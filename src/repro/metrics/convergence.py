"""Convergence detection over per-iteration series.

The paper's headline claims are about convergence: "MLTCP converges to an
interleaved state within 20 iterations … the average iteration times of the
four jobs converge to within 5% of the optimal centralized schedule, and the
interleaving remains stable in subsequent iterations" (§2).  These helpers
turn an iteration-time series into those three numbers: convergence
iteration, relative gap to a target, stability after convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["ConvergenceReport", "detect_convergence", "relative_gap", "is_stable_after"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Convergence analysis of one iteration-time series against a target."""

    converged_at: Optional[int]
    target: float
    tolerance: float
    final_mean: float
    stable: bool

    @property
    def converged(self) -> bool:
        """Whether a convergence point was found."""
        return self.converged_at is not None


def detect_convergence(
    series: Sequence[float],
    target: float,
    tolerance: float = 0.05,
    window: int = 3,
) -> ConvergenceReport:
    """First iteration from which the series stays within ``tolerance`` of
    ``target`` for at least ``window`` consecutive points (and report whether
    it remains there to the end).
    """
    if target <= 0:
        raise ValueError(f"target must be positive, got {target!r}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance!r}")
    if window < 1:
        raise ValueError(f"window must be at least 1, got {window!r}")
    arr = np.asarray(series, dtype=float)
    if arr.size == 0:
        raise ValueError("series is empty")

    within = np.abs(arr - target) <= tolerance * target
    converged_at: Optional[int] = None
    run = 0
    for i, ok in enumerate(within):
        run = run + 1 if ok else 0
        if run >= window:
            converged_at = i - window + 1
            break

    stable = False
    if converged_at is not None:
        stable = bool(within[converged_at:].mean() >= 0.9)
    tail = arr[converged_at:] if converged_at is not None else arr
    return ConvergenceReport(
        converged_at=converged_at,
        target=target,
        tolerance=tolerance,
        final_mean=float(tail.mean()),
        stable=stable,
    )


def relative_gap(measured: float, target: float) -> float:
    """Relative error of ``measured`` against ``target`` (e.g. vs optimal)."""
    if target <= 0:
        raise ValueError(f"target must be positive, got {target!r}")
    return abs(measured - target) / target


def is_stable_after(
    series: Sequence[float], start: int, target: float, tolerance: float = 0.05
) -> bool:
    """Whether the series stays within tolerance of target from ``start`` on."""
    arr = np.asarray(series, dtype=float)
    if start >= arr.size:
        raise ValueError(f"start {start} beyond series length {arr.size}")
    tail = arr[start:]
    return bool(np.all(np.abs(tail - target) <= tolerance * target))

"""Recovery SLOs: how fast the fabric and the workload heal after a fault.

MLTCP's robustness story (paper §4) is that interleaving *re-converges*
without a controller: after a perturbation the gradient-descent dynamics
simply resume from the perturbed state.  This module turns that claim into
three measurable service-level objectives per injected fault:

``time_to_reroute``
    How long placed traffic had no surviving path.  Failure-aware ECMP
    recomputes routes deterministically at the strike instant, so this is
    0 whenever every placed cross-rack pair keeps a surviving spine, and
    the full fault duration when a pair is blackholed (connectivity only
    returns at repair).

``time_to_reinterleave``
    How long after repair the workload takes to re-reach the paper's §4
    interleavable condition *operationally*: the first completed round
    whose mean iteration time is back within ``(1 + tolerance) x ideal``,
    confirmed by ``window`` consecutive such rounds.  ``None`` if the run
    never re-interleaves — which is the expected outcome for fair share,
    whose converged iteration time sits well above ideal even fault-free.

``goodput_lost_bits``
    Iteration-weighted goodput lost to the fault: iterations a fault-free
    control run of the same seed completed inside the fault window (plus a
    settling margin) that the faulted run did not, weighted by each job's
    per-iteration communication volume.

The static §4 feasibility check (does a perfect interleave exist at all?)
is :func:`repro.metrics.contention.link_contention_report`; SLOs carry it
alongside so a report can distinguish "never re-interleaved because the
placement cannot" from "cannot because the policy does not slide".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Protocol, Sequence

import numpy as np

from ..faults.routing import FabricRoutingState
from ..faults.schedule import FaultEvent, FaultSchedule
from ..workloads.placement import FabricSpec, JobPlacement

__all__ = [
    "FaultWindow",
    "IterationLike",
    "RecoverySLO",
    "fault_windows",
    "goodput_deficit_bits",
    "recovery_slos",
    "reinterleave_time",
    "reroute_outage",
]


class IterationLike(Protocol):
    """One completed iteration, as both substrates record it.

    The fluid side's :class:`repro.fluid.flowsim.IterationResult` satisfies
    this directly; the packet side's per-app ``AppIteration`` carries no
    job name, so harness code wraps it (see
    ``repro.harness.experiments.chaos_recovery``).
    """

    @property
    def job(self) -> str: ...

    @property
    def index(self) -> int: ...

    @property
    def comm_start(self) -> float: ...

    @property
    def iteration_end(self) -> float: ...


@dataclass(frozen=True)
class FaultWindow:
    """The active interval of one scheduled fault."""

    event: FaultEvent

    @property
    def start(self) -> float:
        """Strike time (s)."""
        return self.event.time

    @property
    def end(self) -> float:
        """Reversion time (s) — equals ``start`` for instantaneous faults."""
        return self.event.end_time

    @property
    def description(self) -> str:
        """The event's human-readable description."""
        return self.event.describe()


def fault_windows(schedule: FaultSchedule) -> tuple[FaultWindow, ...]:
    """Active windows of every non-instantaneous fault, by strike time."""
    return tuple(
        FaultWindow(event)
        for event in schedule.sorted_events()
        if event.duration > 0
    )


def reroute_outage(
    spec: FabricSpec,
    schedule: FaultSchedule,
    event: FaultEvent,
    placements: Sequence[JobPlacement],
) -> float:
    """Seconds placed traffic had no surviving path because of ``event``.

    Failure-aware ECMP reroutes deterministically at the strike instant,
    so the outage is 0 when every placed pair still has a surviving path
    under the fault state at the strike (``event`` plus every other
    scheduled fault active at that moment).  A blackholed pair only
    regains connectivity at repair: the outage is the event's duration.
    """
    if event.duration <= 0:
        return 0.0
    state = FabricRoutingState(spec)
    # ``event`` is active at its own strike, so this applies it too.
    for other in schedule.sorted_events():
        if other.time <= event.time < other.end_time:
            state.apply(other)
    for placement in placements:
        if state.path_links(placement.src, placement.dst) is None:
            return event.duration
    return 0.0


def reinterleave_time(
    iterations: Sequence[IterationLike],
    jobs: Sequence[str],
    *,
    recovery_time: float,
    ideal_iteration_time: float,
    tolerance: float = 0.10,
    window: int = 3,
) -> Optional[float]:
    """Seconds after repair until the workload is interleaved again.

    A round is the i-th iteration of every job; its completion time is the
    latest ``iteration_end`` among them and its cost the mean duration.
    The workload has re-interleaved at the first round that (a) completes
    after ``recovery_time`` and (b) starts ``window`` consecutive rounds
    whose mean cost is within ``(1 + tolerance) x ideal_iteration_time``
    — the operational form of the paper's §4 interleavable condition.
    Returns the delay from ``recovery_time`` to that round's completion,
    or ``None`` if no such confirmed round exists.
    """
    if window < 1:
        raise ValueError(f"window must be at least 1, got {window!r}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance!r}")
    per_job = {
        name: sorted(
            (it for it in iterations if it.job == name),
            key=lambda it: it.index,
        )
        for name in jobs
    }
    rounds = min((len(its) for its in per_job.values()), default=0)
    if rounds == 0:
        return None
    mean_cost = np.array(
        [
            float(
                np.mean(
                    [
                        per_job[name][i].iteration_end
                        - per_job[name][i].comm_start
                        for name in jobs
                    ]
                )
            )
            for i in range(rounds)
        ]
    )
    done_at = np.array(
        [
            max(per_job[name][i].iteration_end for name in jobs)
            for i in range(rounds)
        ]
    )
    bound = (1.0 + tolerance) * ideal_iteration_time
    ok = mean_cost <= bound
    for r in range(rounds - window + 1):
        if done_at[r] >= recovery_time and bool(ok[r : r + window].all()):
            return float(max(0.0, done_at[r] - recovery_time))
    return None


def goodput_deficit_bits(
    faulted: Sequence[IterationLike],
    control: Sequence[IterationLike],
    window: FaultWindow,
    comm_bits: Mapping[str, float],
    *,
    margin: float = 0.0,
) -> float:
    """Goodput (bits) the fault cost, against a fault-free control run.

    Counts iterations completing inside ``[window.start, window.end +
    margin]`` per job in both runs; each iteration the control completed
    but the faulted run did not is one lost communication volume.  The
    ``margin`` absorbs the settling rounds right after repair.  Clamped
    at 0 per job — a job that somehow got *ahead* does not offset others.
    """
    lo, hi = window.start, window.end + margin

    def count(run: Sequence[IterationLike]) -> dict[str, int]:
        done: dict[str, int] = {name: 0 for name in comm_bits}
        for it in run:
            if lo <= it.iteration_end <= hi and it.job in done:
                done[it.job] += 1
        return done

    control_done = count(control)
    faulted_done = count(faulted)
    return float(
        sum(
            max(0, control_done[name] - faulted_done[name]) * comm_bits[name]
            for name in sorted(comm_bits)
        )
    )


@dataclass(frozen=True)
class RecoverySLO:
    """Recovery objectives for one fault in one run.

    ``interleavable`` is the *static* §4 feasibility of the healthy
    placement (a perfect interleave exists); ``reinterleaved`` is whether
    this run actually got back to it after this fault.
    """

    fault: str
    strike_time: float
    recovery_time: float
    time_to_reroute: float
    time_to_reinterleave: Optional[float]
    goodput_lost_bits: float
    interleavable: bool

    @property
    def reinterleaved(self) -> bool:
        """Did the run re-reach the interleavable condition after repair?"""
        return self.time_to_reinterleave is not None

    def as_record(self) -> dict[str, object]:
        """JSON-ready form for the run report's ``recovery`` section."""
        return {
            "fault": self.fault,
            "strike_time": self.strike_time,
            "recovery_time": self.recovery_time,
            "time_to_reroute": self.time_to_reroute,
            "time_to_reinterleave": self.time_to_reinterleave,
            "goodput_lost_bits": self.goodput_lost_bits,
            "interleavable": self.interleavable,
            "reinterleaved": self.reinterleaved,
        }


def recovery_slos(
    spec: FabricSpec,
    schedule: FaultSchedule,
    placements: Sequence[JobPlacement],
    iterations: Sequence[IterationLike],
    control: Sequence[IterationLike],
    *,
    ideal_iteration_time: float,
    interleavable: bool,
    tolerance: float = 0.10,
    window: int = 3,
    margin: Optional[float] = None,
) -> tuple[RecoverySLO, ...]:
    """Assemble one :class:`RecoverySLO` per scheduled fault window.

    ``iterations`` is the faulted run, ``control`` a fault-free run of
    the same placement and seed; ``interleavable`` the placement's static
    §4 feasibility.  ``margin`` (for the goodput deficit) defaults to two
    ideal iteration times, absorbing the settling rounds after repair.
    """
    if margin is None:
        margin = 2.0 * ideal_iteration_time
    jobs = [placement.job.name for placement in placements]
    comm_bits = {
        placement.job.name: placement.job.comm_bits for placement in placements
    }
    slos = []
    for fault_window in fault_windows(schedule):
        slos.append(
            RecoverySLO(
                fault=fault_window.description,
                strike_time=fault_window.start,
                recovery_time=fault_window.end,
                time_to_reroute=reroute_outage(
                    spec, schedule, fault_window.event, placements
                ),
                time_to_reinterleave=reinterleave_time(
                    iterations,
                    jobs,
                    recovery_time=fault_window.end,
                    ideal_iteration_time=ideal_iteration_time,
                    tolerance=tolerance,
                    window=window,
                ),
                goodput_lost_bits=goodput_deficit_bits(
                    iterations, control, fault_window, comm_bits, margin=margin
                ),
                interleavable=interleavable,
            )
        )
    return tuple(slos)

"""Statistics over iteration-time series (CDFs, percentiles, speedups)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "empirical_cdf",
    "percentile",
    "tail_speedup",
    "SeriesSummary",
    "summarize",
    "jain_fairness",
]


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """``(sorted_values, cumulative_probabilities)`` — the Figure 4(c) view."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    ordered = np.sort(arr)
    probabilities = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, probabilities


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100])."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    return float(np.percentile(arr, q))


def tail_speedup(
    baseline: Sequence[float], improved: Sequence[float], q: float = 99.0
) -> float:
    """Ratio of tail percentiles: how much faster the improved tail is.

    The paper reports "tail iteration time speedup of 1.59x achieved using
    MLTCP compared to standard TCP-Reno" (Figure 4(c)); this is
    ``percentile(baseline, q) / percentile(improved, q)``.
    """
    improved_tail = percentile(improved, q)
    if improved_tail <= 0:
        raise ValueError(f"improved tail percentile must be positive, got {improved_tail!r}")
    return percentile(baseline, q) / improved_tail


def jain_fairness(allocations: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal allocations; ``1/n`` means one user takes
    everything.  Used by the §5 fairness experiments to quantify how far
    MLTCP's *deliberate* unfairness (weights up to slope+intercept apart)
    actually moves the share distribution.
    """
    arr = np.asarray(allocations, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute fairness of an empty allocation")
    if np.any(arr < 0):
        raise ValueError("allocations must be non-negative")
    total_sq = float(arr.sum()) ** 2
    denom = arr.size * float((arr**2).sum())
    if denom == 0:
        raise ValueError("all allocations are zero")
    return total_sq / denom


@dataclass(frozen=True)
class SeriesSummary:
    """Standard descriptive statistics of one iteration-time series."""

    count: int
    mean: float
    std: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    def as_row(self) -> dict[str, float]:
        """Flat mapping for table rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Descriptive statistics of a sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SeriesSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        p50=percentile(arr, 50),
        p90=percentile(arr, 90),
        p99=percentile(arr, 99),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )

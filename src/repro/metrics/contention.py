"""Per-link contention and hyper-period compatibility on a fabric.

:mod:`repro.schedulers.compatibility` scores a job mix on *one* link; on a
multi-rack fabric each link sees a different competitor set, so the
question becomes per-link: over one hyper-period of the jobs crossing a
given rack<->spine link, does their summed offered load fit the link?

The load signals follow psim's ``get_link_loads`` shape (SNIPPETS.md):
for each rack, an ``{"up": ..., "down": ...}`` pair of time series — here
in Gbps, summed over the rack's spine uplinks — which is what a
CASSINI-style hyper-period scheduler would feed its compatibility check.
:func:`link_contention_report` refines that to individual physical links
and reports, per link, the competitor set, mean/peak load and the
fraction of the hyper-period the link is overloaded (0.0 means an
interleave exists *as placed*; MLTCP's §4 guarantee applies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..workloads.job import JobSpec
from ..workloads.placement import FabricSpec, JobPlacement
from ..workloads.traffic import SQUARE, PulseShape, demand_trace

__all__ = [
    "hyper_period",
    "rack_link_loads",
    "LinkContention",
    "link_contention_report",
]


def hyper_period(
    jobs: Sequence[JobSpec], resolution: float = 1e-4
) -> float:
    """Least common multiple of the jobs' ideal iteration periods.

    Periods are quantized to ``resolution`` seconds before the integer
    LCM, which keeps float periods from exploding the result; identical
    jobs yield exactly one period.
    """
    if not jobs:
        raise ValueError("need at least one job")
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution!r}")
    ticks = [
        max(1, int(round(job.ideal_iteration_time / resolution))) for job in jobs
    ]
    lcm = ticks[0]
    for t in ticks[1:]:
        lcm = lcm * t // math.gcd(lcm, t)
    return lcm * resolution


def rack_link_loads(
    placements: Sequence[JobPlacement],
    spec: FabricSpec,
    duration: Optional[float] = None,
    dt: float = 0.0005,
    shape: PulseShape = SQUARE,
) -> list[dict[str, np.ndarray]]:
    """Per-rack offered load on the up/down fabric directions, in Gbps.

    Element ``i`` is rack ``i``'s ``{"up": series, "down": series}`` —
    the summed isolated demand traces of the cross-rack flows leaving
    (``up``) and entering (``down``) the rack, sampled every ``dt``
    seconds over ``duration`` (default: one hyper-period).  Intra-rack
    flows never touch uplinks and contribute nothing.
    """
    if not placements:
        raise ValueError("need at least one placement")
    if duration is None:
        duration = hyper_period([p.job for p in placements])
    samples = int(round(duration / dt))
    loads = [
        {"up": np.zeros(samples), "down": np.zeros(samples)}
        for _rack in range(spec.n_racks)
    ]
    for placement in placements:
        if not placement.cross_rack:
            continue
        nodes = placement.nodes(spec)
        src_rack = int(nodes[1][len("rack"):])
        dst_rack = int(nodes[-2][len("rack"):])
        _times, demand = demand_trace(
            placement.job.with_jitter(0.0), duration, dt=dt, shape=shape
        )
        loads[src_rack]["up"] += demand
        loads[dst_rack]["down"] += demand
    return loads


@dataclass(frozen=True)
class LinkContention:
    """Contention summary of one physical fabric link over a hyper-period."""

    link: str
    capacity_gbps: float
    competitors: tuple[str, ...]
    mean_load_gbps: float
    peak_load_gbps: float
    overload_fraction: float

    @property
    def interleavable(self) -> bool:
        """Whether the competitors' mean load fits the link — the necessary
        condition for a zero-contention interleave on this link."""
        return self.mean_load_gbps <= self.capacity_gbps * (1.0 + 1e-9)

    @property
    def contended(self) -> bool:
        """Whether the as-placed (synchronized) schedule ever overloads it."""
        return self.overload_fraction > 0.0


def link_contention_report(
    placements: Sequence[JobPlacement],
    spec: FabricSpec,
    duration: Optional[float] = None,
    dt: float = 0.0005,
    shape: PulseShape = SQUARE,
) -> list[LinkContention]:
    """Per-physical-link contention over one hyper-period, sorted by name.

    Covers every rack<->spine link of the fabric (edge links carry at
    most one flow under :func:`~repro.workloads.placement.place_jobs`, so
    they cannot be contended).  For each link: which jobs cross it (the
    competitor set — distinct per link under cross-rack placement), the
    mean and peak of their summed isolated demand, and the fraction of
    the hyper-period that demand exceeds capacity with all jobs starting
    as placed.  ``overload_fraction == 0`` on every link means the
    placement is compatible as-is; ``interleavable`` distinguishes links
    MLTCP can fix by sliding from links that are simply over capacity.
    """
    if not placements:
        raise ValueError("need at least one placement")
    if duration is None:
        duration = hyper_period([p.job for p in placements])

    members: dict[str, list[JobPlacement]] = {
        link: [] for link in spec.fabric_links()
    }
    for placement in placements:
        for link in placement.links(spec):
            if link in members:
                members[link].append(placement)

    capacity = spec.uplink_gbps
    report: list[LinkContention] = []
    for link in sorted(members):
        crossing = members[link]
        total: Optional[np.ndarray] = None
        for placement in crossing:
            _times, demand = demand_trace(
                placement.job.with_jitter(0.0), duration, dt=dt, shape=shape
            )
            total = demand if total is None else total + demand
        if total is None:
            mean = peak = overload = 0.0
        else:
            mean = float(total.mean())
            peak = float(total.max())
            overload = float((total > capacity + 1e-9).mean())
        report.append(
            LinkContention(
                link=link,
                capacity_gbps=capacity,
                competitors=tuple(p.job.name for p in crossing),
                mean_load_gbps=mean,
                peak_load_gbps=peak,
                overload_fraction=overload,
            )
        )
    return report

"""Metrics: iteration-time statistics and convergence detection."""

from .contention import (
    LinkContention,
    hyper_period,
    link_contention_report,
    rack_link_loads,
)
from .convergence import (
    ConvergenceReport,
    detect_convergence,
    is_stable_after,
    relative_gap,
)
from .recovery import (
    FaultWindow,
    IterationLike,
    RecoverySLO,
    fault_windows,
    goodput_deficit_bits,
    recovery_slos,
    reinterleave_time,
    reroute_outage,
)
from .stats import (
    SeriesSummary,
    empirical_cdf,
    jain_fairness,
    percentile,
    summarize,
    tail_speedup,
)

__all__ = [
    "empirical_cdf",
    "percentile",
    "tail_speedup",
    "jain_fairness",
    "SeriesSummary",
    "summarize",
    "ConvergenceReport",
    "detect_convergence",
    "relative_gap",
    "is_stable_after",
    "LinkContention",
    "hyper_period",
    "link_contention_report",
    "rack_link_loads",
    "FaultWindow",
    "IterationLike",
    "RecoverySLO",
    "fault_windows",
    "goodput_deficit_bits",
    "recovery_slos",
    "reinterleave_time",
    "reroute_outage",
]

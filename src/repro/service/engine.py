"""Live array-backed fluid engine with job churn.

The batch simulator (:mod:`repro.fluid.flowsim`) integrates a *fixed* job
set over a closed horizon.  The service daemon needs the same fluid
dynamics — two-phase periodic jobs sharing one bottleneck under
water-filling — but over an *open* population: jobs are admitted while the
clock runs, and depart when their iteration budget is spent.  This module
is that engine: the PR 9 struct-of-arrays state and the bit-exact
:func:`repro.fluid.allocation.water_fill_array` kernel, wrapped in
``admit`` / ``step`` / ``state`` instead of a one-shot ``run``.

Determinism contract (docs/SERVICE.md): every float the engine computes is
a pure function of (config, admitted specs in admission order, RNG state).
``state()`` captures the whole of that — arrays, the numpy ``Generator``,
the clock and the completion log — as one picklable dict, and
``load_state`` restores it exactly.  That is what lets the daemon's
write-ahead journal replay a killed run to bit-identical telemetry.

Transitions sweep flows in ascending admission index, matching the batch
engine's RNG draw order; the water-fill rank is recomputed per allocation
over the *active* subset, so shares do not depend on departed jobs.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.units import bps_from_gbps
from ..fluid.allocation import MLTCPWeighted, water_fill_array
from ..workloads.job import JobSpec

__all__ = ["LiveFluidEngine", "ENGINE_POLICIES"]

#: Congestion-control modes the live engine supports.  Both ride the
#: vectorized water-fill: ``fair`` with unit weights (N synchronized Reno
#: flows), ``mltcp`` with the paper's linear ``F(bytes_ratio)`` weights.
ENGINE_POLICIES = ("fair", "mltcp")

_EPS_BITS = 1e-6
_EPS_TIME = 1e-12

PHASE_WAITING = np.int8(0)
PHASE_COMM = np.int8(1)
PHASE_COMPUTE = np.int8(2)
PHASE_DONE = np.int8(3)


class LiveFluidEngine:
    """One bottleneck link, a churning job population, fluid rates.

    Parameters
    ----------
    capacity_gbps:
        Bottleneck capacity (healthy; fault factors scale it per step).
    cc:
        ``"mltcp"`` or ``"fair"`` (:data:`ENGINE_POLICIES`).
    seed:
        Seeds the jitter RNG.  The RNG is part of :meth:`state`, so a
        restored engine continues the same draw sequence.
    quantum:
        Upper bound on one integration step, seconds (rate refresh cadence
        under smoothly-varying weights, as in the batch engine).
    slo_factor:
        A departed job met its SLO when its mean iteration time stayed
        within ``slo_factor`` times its isolation iteration time.
    capacity_factor:
        Optional pure function of simulated time returning the current
        fabric health factor (:meth:`repro.faults.fluid.FluidFaultState.\
        capacity_factor`).  Must be reconstructible from config — it is
        *not* journaled.
    next_transition:
        Optional pure function of time returning the next fault-state
        change, so integration never steps across a capacity edge.
    """

    def __init__(
        self,
        capacity_gbps: float,
        cc: str = "mltcp",
        *,
        seed: int = 0,
        quantum: float = 0.05,
        slo_factor: float = 1.5,
        capacity_factor: Optional[Callable[[float], float]] = None,
        next_transition: Optional[Callable[[float], Optional[float]]] = None,
    ) -> None:
        if capacity_gbps <= 0:
            raise ValueError(
                f"capacity_gbps must be positive, got {capacity_gbps!r}"
            )
        if cc not in ENGINE_POLICIES:
            raise ValueError(
                f"unknown cc {cc!r}; expected one of {ENGINE_POLICIES}"
            )
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        if slo_factor <= 0:
            raise ValueError(f"slo_factor must be positive, got {slo_factor!r}")
        self.capacity_bps = bps_from_gbps(capacity_gbps)
        self.cc = cc
        self.quantum = quantum
        self.slo_factor = slo_factor
        self._capacity_factor = capacity_factor
        self._next_transition = next_transition
        # The paper's deployed linear F (Eq. 2): slope/intercept lifted from
        # the same policy object the batch engine uses, so weights match.
        self._slope, self._intercept = MLTCPWeighted()._linear
        #: Clamp to vanilla CC (unit weights) while True — the fluid
        #: analogue of MLTCP's tracker fallback when churn outpaces the
        #: iteration signal (docs/ROBUSTNESS.md).
        self.fallback_engaged = False

        self.clock = 0.0
        self.rng = np.random.default_rng(seed)
        self.names: list[str] = []
        self.specs: list[JobSpec] = []
        self.completed: list[dict] = []
        self._empty()

    def _empty(self) -> None:
        self.phase = np.zeros(0, dtype=np.int8)
        self.demand_bps = np.zeros(0)
        self.remaining = np.zeros(0)
        self.sent = np.zeros(0)
        self.cur_total = np.zeros(0)
        self.deadline = np.zeros(0)
        self.comm_start = np.zeros(0)
        self.iter_index = np.zeros(0, dtype=np.int64)
        self.iter_limit = np.zeros(0, dtype=np.int64)
        self.iter_time_sum = np.zeros(0)
        self.arrival = np.zeros(0)

    # ------------------------------------------------------------------ churn

    @property
    def now(self) -> float:
        """Current simulated time, seconds.  Read-only from outside: the
        clock only advances inside :meth:`step` (the event loop owns it)."""
        return self.clock

    @property
    def running(self) -> int:
        """Jobs currently in the simulation (any phase but departed)."""
        return len(self.names)

    def admit(self, spec: JobSpec) -> None:
        """Add one job; its first iteration starts at
        ``max(now, spec.start_offset)`` (a deferred job starts on admission).
        """
        if spec.name in self.names:
            raise ValueError(f"job {spec.name!r} is already running")
        if spec.iteration_limit is None:
            raise ValueError(
                f"job {spec.name!r}: service jobs must carry an "
                "iteration_limit (open-ended jobs never depart)"
            )
        start = max(self.clock, spec.start_offset)
        self.names.append(spec.name)
        self.specs.append(spec)
        self.phase = np.append(self.phase, PHASE_WAITING)
        self.demand_bps = np.append(self.demand_bps, spec.demand_bps)
        self.remaining = np.append(self.remaining, 0.0)
        self.sent = np.append(self.sent, 0.0)
        self.cur_total = np.append(self.cur_total, spec.comm_bits)
        self.deadline = np.append(self.deadline, start)
        self.comm_start = np.append(self.comm_start, np.nan)
        self.iter_index = np.append(self.iter_index, 0)
        self.iter_limit = np.append(self.iter_limit, spec.iteration_limit)
        self.iter_time_sum = np.append(self.iter_time_sum, 0.0)
        self.arrival = np.append(self.arrival, start)

    def _depart(self, index: int) -> dict:
        spec = self.specs[index]
        iterations = int(self.iter_index[index])
        mean_iter = (
            float(self.iter_time_sum[index]) / iterations if iterations else None
        )
        record = {
            "name": spec.name,
            "arrival_s": float(self.arrival[index]),
            "departure_s": float(self.clock),
            "iterations": iterations,
            "mean_iteration_s": mean_iter,
            "ideal_iteration_s": spec.ideal_iteration_time,
            "slo_ok": (
                mean_iter <= self.slo_factor * spec.ideal_iteration_time
                if mean_iter is not None
                else None
            ),
        }
        self.completed.append(record)
        return record

    def _compact(self) -> list[dict]:
        """Remove departed jobs from the arrays; returns their records."""
        done = np.flatnonzero(self.phase == PHASE_DONE)
        if done.size == 0:
            return []
        records = [self._depart(int(i)) for i in done]
        keep = np.flatnonzero(self.phase != PHASE_DONE)
        self.names = [self.names[int(i)] for i in keep]
        self.specs = [self.specs[int(i)] for i in keep]
        for field in (
            "phase", "demand_bps", "remaining", "sent", "cur_total",
            "deadline", "comm_start", "iter_index", "iter_limit",
            "iter_time_sum", "arrival",
        ):
            setattr(self, field, getattr(self, field)[keep])
        return records

    # ---------------------------------------------------------------- stepping

    def _start_comm(self, i: int) -> None:
        spec = self.specs[i]
        volume = spec.sample_comm_bits(self.rng)
        self.phase[i] = PHASE_COMM
        self.remaining[i] = volume
        self.sent[i] = 0.0
        self.cur_total[i] = volume
        self.comm_start[i] = self.clock
        self.deadline[i] = np.nan

    def _sweep(self) -> bool:
        """Fire every due transition at ``now`` in ascending index order.

        Returns whether any job departed (the caller compacts *after* the
        sweep so indices stay stable inside it).  Loops until quiescent so
        zero-length compute phases cascade within one call, exactly like
        the batch engine's same-timestamp event chains.
        """
        departed = False
        fired = True
        while fired:
            fired = False
            for i in range(len(self.names)):
                phase = self.phase[i]
                if phase == PHASE_WAITING and self.deadline[i] <= self.clock + _EPS_TIME:
                    self._start_comm(i)
                    fired = True
                elif phase == PHASE_COMM and self.remaining[i] <= _EPS_BITS:
                    compute = self.specs[i].sample_compute_time(self.rng)
                    self.phase[i] = PHASE_COMPUTE
                    self.deadline[i] = self.clock + compute
                    if compute > _EPS_TIME:
                        fired = True
                elif phase == PHASE_COMPUTE and self.deadline[i] <= self.clock + _EPS_TIME:
                    self.iter_time_sum[i] += self.clock - self.comm_start[i]
                    self.iter_index[i] += 1
                    if self.iter_index[i] >= self.iter_limit[i]:
                        self.phase[i] = PHASE_DONE
                        departed = True
                    else:
                        self._start_comm(i)
                    fired = True
        return departed

    def _weights(self, active: np.ndarray) -> np.ndarray:
        if self.fallback_engaged or self.cc == "fair":
            return np.ones(active.size)
        ratio = self.sent[active] / self.cur_total[active]
        ratio = np.where(ratio > 1.0, 1.0, ratio)
        return self._slope * ratio + self._intercept

    def step(self, until: float, max_steps: Optional[int] = None) -> list[dict]:
        """Advance the fluid state to ``until``; returns departure records.

        Raises ``RuntimeError`` on a livelocked integration (the step
        budget mirrors the batch engine's stall guard); the daemon's
        watchdog converts that into a supervised restart.
        """
        if until < self.clock - _EPS_TIME:
            raise ValueError(
                f"step target {until!r} precedes current time {self.clock!r}"
            )
        if max_steps is None:
            horizon = max(1.0, (until - self.clock) / self.quantum)
            max_steps = int(50 * max(1, len(self.names)) * horizon)
        departures: list[dict] = []
        steps = 0
        while self.clock < until - _EPS_TIME:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"live engine exceeded {max_steps} steps integrating "
                    f"[{self.clock:g}, {until:g}] with {len(self.names)} jobs; "
                    "livelocked?"
                )
            if self._sweep():
                departures.extend(self._compact())
            factor = (
                self._capacity_factor(self.clock)
                if self._capacity_factor is not None
                else 1.0
            )
            active = np.flatnonzero(self.phase == PHASE_COMM)
            rates = np.zeros(active.size)
            if active.size and factor > 0.0:
                names = [self.names[int(i)] for i in active]
                order = sorted(range(len(names)), key=names.__getitem__)
                rank = np.empty(len(names), dtype=np.int64)
                rank[order] = np.arange(len(names))
                rates = water_fill_array(
                    self.demand_bps[active],
                    self._weights(active),
                    self.capacity_bps * factor,
                    rank=rank,
                )
            dt = min(self.quantum, until - self.clock)
            pending = np.flatnonzero(
                (self.phase == PHASE_WAITING) | (self.phase == PHASE_COMPUTE)
            )
            if pending.size:
                next_deadline = float(np.min(self.deadline[pending]))
                if next_deadline > self.clock + _EPS_TIME:
                    dt = min(dt, next_deadline - self.clock)
            if active.size:
                moving = rates > _EPS_BITS
                if np.any(moving):
                    drain = self.remaining[active][moving] / rates[moving]
                    dt = min(dt, float(np.min(drain)))
            elif pending.size == 0:
                # Idle fabric: nothing to integrate, jump to the target.
                self.clock = until
                break
            if self._next_transition is not None:
                edge = self._next_transition(self.clock)
                if edge is not None and edge < until:
                    dt = min(dt, edge - self.clock)
            dt = max(dt, _EPS_TIME)
            if active.size:
                delivered = rates * dt
                shrunk = self.remaining[active] - delivered
                self.remaining[active] = np.where(shrunk > 0.0, shrunk, 0.0)
                grown = self.sent[active] + delivered
                total = self.cur_total[active]
                self.sent[active] = np.where(grown < total, grown, total)
            self.clock += dt
        if self._sweep():
            departures.extend(self._compact())
        return departures

    # ------------------------------------------------------------- snapshots

    def job_rows(self) -> list[dict]:
        """Per-running-job telemetry rows (schema v6 ``service[].jobs``)."""
        rows = []
        for i, spec in enumerate(self.specs):
            iterations = int(self.iter_index[i])
            mean_iter = (
                float(self.iter_time_sum[i]) / iterations if iterations else None
            )
            rows.append(
                {
                    "name": spec.name,
                    "iterations": iterations,
                    "mean_iteration_s": mean_iter,
                    "slo_ok": (
                        mean_iter <= self.slo_factor * spec.ideal_iteration_time
                        if mean_iter is not None
                        else None
                    ),
                }
            )
        return rows

    def slo_attainment(self) -> Optional[float]:
        """Fraction of departed jobs that met their SLO (None before any)."""
        judged = [r for r in self.completed if r["slo_ok"] is not None]
        if not judged:
            return None
        return sum(1 for r in judged if r["slo_ok"]) / len(judged)

    # ------------------------------------------------------------ persistence

    _STATE_FIELDS = (
        "phase", "demand_bps", "remaining", "sent", "cur_total", "deadline",
        "comm_start", "iter_index", "iter_limit", "iter_time_sum", "arrival",
    )

    def state(self) -> dict:
        """Picklable snapshot of the complete dynamic state."""
        payload = {
            "now": self.clock,
            # Value semantics, not a live Generator reference: the journal
            # keeps entries in memory, and an in-process rollback must not
            # see RNG draws made after the snapshot.
            "rng_state": self.rng.bit_generator.state,
            "names": list(self.names),
            "specs": list(self.specs),
            "completed": [dict(r) for r in self.completed],
            "fallback_engaged": self.fallback_engaged,
        }
        for field in self._STATE_FIELDS:
            payload[field] = getattr(self, field).copy()
        return payload

    def load_state(self, payload: dict) -> None:
        """Restore a :meth:`state` snapshot bit-identically."""
        self.clock = payload["now"]
        self.rng = np.random.default_rng()
        self.rng.bit_generator.state = payload["rng_state"]
        self.names = list(payload["names"])
        self.specs = list(payload["specs"])
        self.completed = [dict(r) for r in payload["completed"]]
        self.fallback_engaged = payload["fallback_engaged"]
        for field in self._STATE_FIELDS:
            setattr(self, field, payload[field].copy())

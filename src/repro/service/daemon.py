"""The long-lived scheduling daemon: epochs, supervision, recovery.

``repro serve`` runs one :class:`ChurnDaemon`.  Each *epoch* (a fixed
slice of simulated time) the daemon:

1. polls the pre-drawn arrival stream for jobs that arrived since the
   previous epoch and runs each through the admission controller
   (admit / defer / degrade / shed — every decision becomes a schema-v6
   ``service`` event);
2. drains deferred jobs into slots freed by departures;
3. advances the live fluid engine to the epoch boundary under a
   :class:`repro.guards.StepperWatchdog` — a stall, livelock or injected
   crash triggers a supervised restart from the write-ahead journal
   (bounded by ``max_recoveries``);
4. commits the complete dynamic state to the journal (the WAL commit
   point — a crash loses at most the in-flight epoch; a commit that
   fails every retry is a hard stop, since advancing uncommitted would
   silently void that bound);
5. every ``snapshot_every`` epochs, emits a telemetry snapshot, with a
   per-operation timeout and bounded retry + exponential backoff on the
   snapshot sink (a slow or failing sink degrades telemetry, never the
   simulation).

Graceful degradation: when one epoch's churn (admissions + departures)
exceeds ``churn_limit``, the iteration-progress signal MLTCP weights by
is stale for a meaningful fraction of flows, so the engine clamps to
vanilla CC (unit weights) for ``degrade_epochs`` epochs — the fluid
analogue of the tracker fallback (docs/ROBUSTNESS.md).

Wall-clock sources (``time.monotonic`` / ``time.sleep``) are injectable
so tests fake hangs and backoff deterministically; simulated results
never depend on them.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..faults.fluid import FluidFaultState
from ..faults.schedule import FaultSchedule
from ..guards import GuardRail, StepperWatchdog
from ..harness.telemetry import RunTelemetry
from ..workloads.arrivals import ArrivalModel, ArrivalStream
from ..workloads.job import JobSpec
from .admission import SHED_POLICIES, AdmissionController
from .engine import ENGINE_POLICIES, LiveFluidEngine
from .journal import ServiceJournal

__all__ = ["ChurnDaemon", "ServiceConfig", "ServiceCrash", "InjectedCrash"]

#: Backoff delays are capped here no matter the attempt count.
MAX_BACKOFF_S = 2.0


class ServiceCrash(RuntimeError):
    """The stepper died mid-epoch; the supervisor may restart it."""


class InjectedCrash(ServiceCrash):
    """A deliberately injected stepper crash (tests, ``make serve-smoke``)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that determines a service run's simulated results.

    The determinism-relevant fields are hashed into
    :meth:`fingerprint`; a journal stamped with a different fingerprint
    cannot be resumed (it belongs to a different run).
    """

    arrival: ArrivalModel
    templates: tuple[JobSpec, ...]
    capacity_gbps: float = 50.0
    cc: str = "mltcp"
    seed: int = 0
    quantum: float = 0.05
    epoch_s: float = 1.0
    epochs: int = 30
    max_running: int = 8
    queue_limit: int = 16
    shed_policy: str = "defer"
    slo_factor: float = 1.5
    snapshot_every: int = 5
    churn_limit: int = 4
    degrade_epochs: int = 2
    max_recoveries: int = 3
    op_timeout_s: float = 5.0
    op_attempts: int = 3
    backoff_base_s: float = 0.05
    stall_timeout_s: float = 30.0
    guard_policy: str = "record"
    faults: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        if not self.templates:
            raise ValueError("service config: need at least one job template")
        if self.cc not in ENGINE_POLICIES:
            raise ValueError(
                f"unknown cc {self.cc!r}; expected one of {ENGINE_POLICIES}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; expected one of "
                f"{SHED_POLICIES}"
            )
        for name in ("epoch_s", "capacity_gbps", "quantum", "slo_factor"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"service config: {name} must be positive, got "
                    f"{getattr(self, name)!r}"
                )
        for name in (
            "epochs", "max_running", "snapshot_every", "op_attempts",
        ):
            if getattr(self, name) < 1:
                raise ValueError(
                    f"service config: {name} must be >= 1, got "
                    f"{getattr(self, name)!r}"
                )
        for name in (
            "queue_limit", "churn_limit", "degrade_epochs", "max_recoveries",
        ):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"service config: {name} must be non-negative, got "
                    f"{getattr(self, name)!r}"
                )
        if self.op_timeout_s <= 0 or self.backoff_base_s < 0:
            raise ValueError(
                "service config: op_timeout_s must be positive and "
                f"backoff_base_s non-negative, got {self.op_timeout_s!r}, "
                f"{self.backoff_base_s!r}"
            )
        if self.stall_timeout_s <= 0:
            raise ValueError(
                f"service config: stall_timeout_s must be positive, got "
                f"{self.stall_timeout_s!r}"
            )

    def fingerprint(self) -> str:
        """Digest of every field that shapes simulated results."""
        payload = {
            "arrival": repr(self.arrival),
            "templates": [repr(t) for t in self.templates],
            "capacity_gbps": self.capacity_gbps,
            "cc": self.cc,
            "seed": self.seed,
            "quantum": self.quantum,
            "epoch_s": self.epoch_s,
            "epochs": self.epochs,
            "max_running": self.max_running,
            "queue_limit": self.queue_limit,
            "shed_policy": self.shed_policy,
            "slo_factor": self.slo_factor,
            "churn_limit": self.churn_limit,
            "degrade_epochs": self.degrade_epochs,
            "faults": (
                [e.describe() for e in self.faults.sorted_events()]
                if self.faults is not None
                else None
            ),
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


class ChurnDaemon:
    """Supervised epoch loop around one :class:`LiveFluidEngine`.

    Parameters
    ----------
    config:
        The run definition (simulated results depend only on this).
    journal:
        The write-ahead journal.  ``None`` keeps the run un-journaled
        (no crash recovery; the supervisor then re-raises any crash).
    telemetry:
        Optional :class:`RunTelemetry` collecting the schema-v6
        ``service`` snapshot stream plus guard/degradation events.
    snapshot_path:
        Optional JSONL sink mirroring each snapshot as it is taken (the
        live query surface; written under retry + backoff).
    resume:
        Restore the latest committed epoch from ``journal`` and continue.
        Requires a matching config fingerprint.
    crash_at_epoch:
        Inject one :class:`InjectedCrash` mid-way through this epoch
        (after state has been mutated), exercising the recovery path.
    clock / sleep:
        Wall-clock injection points for the watchdog, per-op timeouts
        and backoff; default to ``time.monotonic`` / ``time.sleep``.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        journal: Optional[ServiceJournal] = None,
        telemetry: Optional[RunTelemetry] = None,
        snapshot_path: Optional[Path | str] = None,
        resume: bool = False,
        crash_at_epoch: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config
        self.journal = journal
        self.telemetry = telemetry
        self.snapshot_path = Path(snapshot_path) if snapshot_path else None
        self._clock = clock
        self._sleep = sleep
        self._crash_epoch = crash_at_epoch
        self._crash_armed = crash_at_epoch is not None

        self.rail = GuardRail(config.guard_policy)
        self.watchdog = StepperWatchdog(
            self.rail, stall_timeout_s=config.stall_timeout_s, clock=clock
        )
        if config.faults is not None:
            # The single-bottleneck service only replays capacity-affecting
            # kinds; job-targeted events reference names that do not exist
            # yet, so FluidFaultState's eager validation rejects them here.
            self._fabric = FluidFaultState(config.faults, job_names=())
        else:
            self._fabric = None

        self.stream: ArrivalStream = config.arrival.stream(
            config.templates, seed=config.seed + 1
        )
        self.engine = self._fresh_engine()
        self.admission = AdmissionController(
            config.max_running, config.queue_limit, config.shed_policy
        )
        self.counters = {
            "admitted": 0,
            "deferred": 0,
            "shed": 0,
            "degraded": 0,
            "departed": 0,
            "recoveries": 0,
        }
        self._events: list[dict] = []
        self.snapshots: list[dict] = []
        self._next_arrival = 0
        self._fallback_left = 0
        self._last_factor = 1.0
        self.epoch = 0

        if self.journal is not None:
            existing = self.journal.meta()
            if resume:
                if existing is None:
                    raise ValueError(
                        f"cannot resume: {self.journal.path} has no service "
                        "meta record"
                    )
                if existing.get("fingerprint") != config.fingerprint():
                    raise ValueError(
                        "cannot resume: journal belongs to a different "
                        "config (fingerprint mismatch)"
                    )
                latest = self.journal.latest_epoch()
                if latest is not None:
                    self._restore(latest)
                    # A resume IS a recovery: the previous process died (or
                    # was killed) somewhere past this commit point.
                    self.counters["recoveries"] += 1
                    self._event(
                        "recovery",
                        f"resumed from journal at epoch {latest} after an "
                        "external kill",
                    )
            else:
                if existing is not None:
                    raise ValueError(
                        f"journal {self.journal.path} already holds a run; "
                        "pass resume=True or start a fresh journal"
                    )
                self.journal.write_meta(
                    {
                        "fingerprint": config.fingerprint(),
                        "epochs": config.epochs,
                        "epoch_s": config.epoch_s,
                        "cc": config.cc,
                    }
                )
        elif resume:
            raise ValueError("cannot resume without a journal")

    def _fresh_engine(self) -> LiveFluidEngine:
        config = self.config
        return LiveFluidEngine(
            config.capacity_gbps,
            config.cc,
            seed=config.seed,
            quantum=config.quantum,
            slo_factor=config.slo_factor,
            capacity_factor=(
                self._fabric.capacity_factor if self._fabric is not None else None
            ),
            next_transition=(
                self._fabric.next_transition_after
                if self._fabric is not None
                else None
            ),
        )

    # ------------------------------------------------------------- event log

    def _event(self, kind: str, detail: str, job: Optional[str] = None) -> None:
        self._events.append(
            {
                "kind": kind,
                "detail": detail,
                "job": job,
                "time": float(self.engine.now),
            }
        )

    # ------------------------------------------------------- retries/backoff

    def _with_retry(self, op: str, fn: Callable[[], object]) -> bool:
        """Run one side-effecting operation under timeout + bounded retry.

        Returns whether the operation eventually succeeded.  Failures are
        recorded as ``retry`` degradations; exhausting every attempt
        records an ``error`` and returns False — the daemon sheds the side
        effect rather than the simulation (mirrors the experiment runner's
        backoff idiom).  An attempt that *returns* but blows the
        ``op_timeout_s`` budget is still a success: the side effect (a
        journal append, a snapshot line) cannot be un-done, so re-running
        it would duplicate it.  The overrun is recorded as a ``timeout``
        degradation for observability only.
        """
        config = self.config
        for attempt in range(1, config.op_attempts + 1):
            started = self._clock()
            try:
                fn()
                failure: Optional[str] = None
            except OSError as error:
                failure = f"{type(error).__name__}: {error}"
            elapsed = self._clock() - started
            if failure is None:
                if elapsed > config.op_timeout_s and self.telemetry is not None:
                    self.telemetry.record_degradation(
                        "timeout",
                        f"{op}: attempt {attempt} took {elapsed:.3g} s "
                        f"(budget {config.op_timeout_s:.3g} s)",
                        attempt=attempt,
                    )
                return True
            if self.telemetry is not None:
                self.telemetry.record_degradation(
                    "retry",
                    f"{op}: attempt {attempt} failed ({failure})",
                    attempt=attempt,
                )
            if attempt < config.op_attempts:
                delay = min(
                    MAX_BACKOFF_S,
                    config.backoff_base_s * (2 ** (attempt - 1)),
                )
                if delay > 0:
                    self._sleep(delay)
        if self.telemetry is not None:
            self.telemetry.record_degradation(
                "error", f"{op}: gave up after {config.op_attempts} attempts"
            )
        return False

    # ----------------------------------------------------------- persistence

    def _dynamic_state(self) -> dict:
        return {
            "engine": self.engine.state(),
            "admission": self.admission.state(),
            "counters": dict(self.counters),
            "events": [dict(e) for e in self._events],
            "next_arrival": self._next_arrival,
            "fallback_left": self._fallback_left,
            "last_factor": self._last_factor,
            "epoch": self.epoch,
        }

    def _restore(self, epoch: int) -> None:
        assert self.journal is not None
        state = self.journal.epoch_state(epoch)
        self.engine = self._fresh_engine()
        self.engine.load_state(state["engine"])
        self.admission.load_state(state["admission"])
        # The journaled count only reflects recoveries committed with a
        # later successful epoch; the in-process count may be ahead of it
        # (a crash loop never reaches the next commit).  Keep whichever is
        # larger, or a deterministically repeating crash would reset the
        # counter every cycle and the max_recoveries guard in run() would
        # never trip.
        prior_recoveries = self.counters["recoveries"]
        self.counters = dict(state["counters"])
        self.counters["recoveries"] = max(
            prior_recoveries, self.counters["recoveries"]
        )
        self._events = [dict(e) for e in state["events"]]
        self._next_arrival = state["next_arrival"]
        self._fallback_left = state["fallback_left"]
        self._last_factor = state["last_factor"]
        self.engine.fallback_engaged = self._fallback_left > 0
        self.epoch = state["epoch"] + 1

    # ------------------------------------------------------------ the epochs

    def _admit(self, spec: JobSpec, verdict: str) -> None:
        self.engine.admit(spec)
        if verdict == "degrade":
            self.counters["degraded"] += 1
            self._event(
                "degrade",
                "admitted past capacity; telemetry coarsens while "
                "oversubscribed",
                job=spec.name,
            )
        else:
            self.counters["admitted"] += 1
            self._event("admit", "admitted into the live simulation", job=spec.name)

    def _poll_arrivals(self, horizon: float) -> int:
        """Offer every arrival with time <= ``horizon``; returns admissions."""
        admissions = 0
        for spec in self.admission.drain(self.engine.running):
            self._admit(spec, "admit")
            admissions += 1
        events = self.stream.events
        while (
            self._next_arrival < len(events)
            and events[self._next_arrival].time <= horizon
        ):
            arrival = events[self._next_arrival]
            self._next_arrival += 1
            verdict = self.admission.offer(arrival.spec, self.engine.running)
            if verdict in ("admit", "degrade"):
                self._admit(arrival.spec, verdict)
                admissions += 1
            elif verdict == "defer":
                self.counters["deferred"] += 1
                self._event(
                    "defer",
                    f"parked in the pending queue "
                    f"(depth {self.admission.queue_depth})",
                    job=arrival.spec.name,
                )
            else:
                self.counters["shed"] += 1
                self._event(
                    "shed",
                    f"load shed under the {self.admission.policy!r} policy",
                    job=arrival.spec.name,
                )
        return admissions

    def _step_supervised(self, target: float) -> list[dict]:
        """One watchdog-bracketed engine advance, with crash injection."""
        self.watchdog.begin(self.engine.now)
        departures: list[dict] = []
        try:
            if self._crash_armed and self._crash_epoch == self.epoch:
                midpoint = (self.engine.now + target) / 2.0
                departures.extend(self.engine.step(midpoint))
                self._crash_armed = False
                raise InjectedCrash(
                    f"injected stepper crash mid-epoch {self.epoch} "
                    f"at t={self.engine.now:g}s"
                )
            departures.extend(self.engine.step(target))
        except RuntimeError as error:
            if isinstance(error, ServiceCrash):
                raise
            raise ServiceCrash(f"stepper died: {error}") from error
        if self.watchdog.check(self.engine.now, target):
            raise ServiceCrash(
                f"stepper watchdog fired during epoch {self.epoch}"
            )
        return departures

    def _poll_capacity_edges(self) -> None:
        if self._fabric is None:
            return
        factor = self._fabric.capacity_factor(self.engine.now)
        if factor != self._last_factor:
            detail = (
                f"bottleneck capacity factor {self._last_factor:g} -> "
                f"{factor:g}"
            )
            self._fabric.record(self.engine.now, detail)
            self._event("fault", detail)
            if self.telemetry is not None:
                self.telemetry.record_degradation("fault", detail)
            self._last_factor = factor

    def _run_epoch(self) -> None:
        config = self.config
        target = (self.epoch + 1) * config.epoch_s
        admissions = self._poll_arrivals(self.epoch * config.epoch_s)
        if self._fallback_left > 0 and not self.engine.fallback_engaged:
            self.engine.fallback_engaged = True
        departures = self._step_supervised(target)
        self._poll_capacity_edges()
        for record in departures:
            self.counters["departed"] += 1
            self._event(
                "depart",
                f"finished {record['iterations']} iterations "
                f"(slo_ok={record['slo_ok']})",
                job=record["name"],
            )
        churn = admissions + len(departures)
        if self._fallback_left > 0:
            self._fallback_left -= 1
            if self._fallback_left == 0:
                self.engine.fallback_engaged = False
        if churn > config.churn_limit and config.degrade_epochs > 0:
            if self._fallback_left == 0:
                detail = (
                    f"churn {churn} > limit {config.churn_limit} in epoch "
                    f"{self.epoch}; clamping to vanilla CC for "
                    f"{config.degrade_epochs} epoch(s)"
                )
                self._event("fallback", detail)
                if self.telemetry is not None:
                    self.telemetry.record_guard_event(
                        "degradation",
                        detail,
                        guard="service-churn",
                        subject="engine",
                        time=float(self.engine.now),
                    )
            self._fallback_left = config.degrade_epochs
            self.engine.fallback_engaged = True

    # ------------------------------------------------------------- snapshots

    def _coarse(self) -> bool:
        return (
            self.config.shed_policy == "degrade"
            and self.engine.running > self.config.max_running
        )

    def _take_snapshot(self) -> dict:
        coarse = self._coarse()
        entry = {
            "epoch": self.epoch,
            "time": float(self.engine.now),
            "running": self.engine.running,
            "queue_depth": self.admission.queue_depth,
            "admitted": self.counters["admitted"],
            "deferred": self.counters["deferred"],
            "shed": self.counters["shed"],
            "degraded": self.counters["degraded"],
            "departed": self.counters["departed"],
            "recoveries": self.counters["recoveries"],
            "slo_attainment": self.engine.slo_attainment(),
            "coarse": coarse,
            "events": [dict(e) for e in self._events],
            "jobs": None if coarse else self.engine.job_rows(),
        }
        if self.telemetry is not None:
            entry = self.telemetry.record_service_snapshot(**entry)
        self.snapshots.append(entry)
        self._events = []
        path = self.snapshot_path
        if path is not None:
            line = json.dumps(entry) + "\n"

            def emit() -> None:
                with open(path, "a") as handle:
                    handle.write(line)
                    handle.flush()

            self._with_retry("snapshot emission", emit)
        return entry

    # -------------------------------------------------------------- the run

    def run(self) -> dict:
        """Drive the service to ``config.epochs`` and return the summary."""
        config = self.config
        while self.epoch < config.epochs:
            try:
                self._run_epoch()
            except ServiceCrash as crash:
                if self.journal is None:
                    raise
                if self.counters["recoveries"] >= config.max_recoveries:
                    raise ServiceCrash(
                        f"gave up after {config.max_recoveries} supervised "
                        f"restarts; last crash: {crash}"
                    ) from crash
                restored = self.journal.latest_epoch()
                self._recover_from(crash, restored)
                continue
            # Snapshot BEFORE the commit: the snapshot flushes the event
            # buffer, so the committed state never holds events an earlier
            # snapshot already published (a restore would re-emit them).
            if (self.epoch + 1) % config.snapshot_every == 0:
                self._take_snapshot()
            journal = self.journal
            if journal is not None:
                epoch, state = self.epoch, self._dynamic_state()

                def commit() -> None:
                    # put() swallows OSError into a False return; surface it
                    # so the retry wrapper can back off and try again.
                    if not journal.commit_epoch(epoch, state):
                        raise OSError("journal append did not reach disk")

                if not self._with_retry("journal commit", commit):
                    # Unlike a slow snapshot sink, a dead journal cannot be
                    # shed: advancing uncommitted would silently void the
                    # "a crash loses at most the in-flight epoch" bound.
                    detail = (
                        f"journal commit for epoch {epoch} failed after "
                        f"{config.op_attempts} attempt(s); the recovery "
                        "bound no longer holds — stopping"
                    )
                    if self.telemetry is not None:
                        self.telemetry.record_guard_event(
                            "violation",
                            detail,
                            guard="service-journal",
                            subject="journal",
                            time=float(self.engine.now),
                        )
                    raise ServiceCrash(detail)
            self.epoch += 1
        if not self.snapshots or self.snapshots[-1]["epoch"] != self.epoch - 1:
            self.epoch -= 1
            self._take_snapshot()
            self.epoch += 1
        return self.result()

    def _recover_from(self, crash: ServiceCrash, restored: Optional[int]) -> None:
        """Reload the last committed epoch and log the recovery."""
        if restored is not None:
            self._restore(restored)
        else:
            # Crash before the first commit: replay from scratch.
            self.engine = self._fresh_engine()
            self.admission = AdmissionController(
                self.config.max_running,
                self.config.queue_limit,
                self.config.shed_policy,
            )
            for key in self.counters:
                if key != "recoveries":
                    self.counters[key] = 0
            self._events = []
            self._next_arrival = 0
            self._fallback_left = 0
            self._last_factor = 1.0
            self.epoch = 0
        self.counters["recoveries"] += 1
        detail = (
            f"supervised restart #{self.counters['recoveries']}: {crash}; "
            f"resumed from "
            + (f"epoch {restored}" if restored is not None else "scratch")
        )
        self._event("recovery", detail)
        if self.telemetry is not None:
            self.telemetry.record_degradation("crash", str(crash))
            self.telemetry.record_guard_event(
                "watchdog",
                detail,
                guard="service-supervisor",
                subject="stepper",
                time=float(self.engine.now),
            )

    # --------------------------------------------------------------- results

    def result(self) -> dict:
        """The run summary (final per-job telemetry + counters)."""
        return {
            "fingerprint": self.config.fingerprint(),
            "epochs_run": self.epoch,
            "final_time": float(self.engine.now),
            "counters": dict(self.counters),
            "queue_depth": self.admission.queue_depth,
            "slo_attainment": self.engine.slo_attainment(),
            "per_job": {
                "completed": [dict(r) for r in self.engine.completed],
                "running": self.engine.job_rows(),
            },
            "snapshots": len(self.snapshots),
            "arrivals_offered": self._next_arrival,
        }

    def per_job_fingerprint(self) -> str:
        """Digest of the final per-job telemetry, for bit-identity checks.

        Floats are serialized via ``repr`` round-tripping JSON, so two
        runs agree iff every per-job float is bit-identical.
        """
        blob = json.dumps(self.result()["per_job"], sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


def query_journal(path: Path | str) -> dict:
    """Summarize a service journal without running anything.

    The ``repro serve --query`` surface: run identity, committed epochs,
    and the counters of the latest committed state.
    """
    journal = ServiceJournal(path)
    meta = journal.meta()
    epochs = journal.epochs()
    summary: dict = {
        "path": str(journal.path),
        "meta": meta,
        "committed_epochs": len(epochs),
        "latest_epoch": epochs[-1] if epochs else None,
        "corrupt_lines": journal.corrupt_lines,
    }
    if epochs:
        state = journal.epoch_state(epochs[-1])
        summary["counters"] = dict(state["counters"])
        summary["running"] = len(state["engine"]["names"])
        summary["queue_depth"] = len(state["admission"]["pending"])
        summary["time"] = float(state["engine"]["now"])
    return summary

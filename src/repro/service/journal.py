"""The service's incremental write-ahead journal.

Extends :class:`repro.harness.checkpoint.RunCheckpoint` — same JSONL
``{"key", "blob"}`` format, same fsync-per-append durability, same
truncated-final-line tolerance — with an *ordered* key space:

* ``service:meta`` — the run's identity: a config fingerprint plus the
  epoch/horizon parameters.  Written once at startup; a resuming daemon
  refuses a journal whose fingerprint does not match its own config
  (resuming someone else's journal would silently diverge).
* ``epoch:<NNNNNNNN>`` — the complete dynamic state at the *end* of that
  epoch: engine arrays + RNG, admission queue, counters, pending
  snapshot events.  Zero-padded so lexicographic key order is epoch
  order.

Commit protocol (docs/SERVICE.md): the daemon mutates its live state
through epoch ``k`` and only then appends ``epoch:k``.  A crash anywhere
before the append loses at most the in-flight epoch; recovery reloads the
highest committed epoch and re-runs from there.  Because every random
draw is journaled inside the engine state, the replay is bit-identical to
a run that never crashed.

Memory: recovery only ever reads the *latest* committed epoch, but the
inherited checkpoint keeps every committed blob in RAM for the process
lifetime — unbounded growth for a long-lived daemon.  The ``retain``
knob compacts the in-memory map down to the newest N epoch states after
each commit (and after load); the file on disk keeps the full history
either way, so an unbounded reader (``query_journal``) still sees every
epoch.
"""

from __future__ import annotations

import os
from typing import Optional

from ..harness.checkpoint import RunCheckpoint

__all__ = ["ServiceJournal"]

_META_KEY = "service:meta"
_EPOCH_PREFIX = "epoch:"


def _epoch_key(epoch: int) -> str:
    return f"{_EPOCH_PREFIX}{epoch:08d}"


class ServiceJournal(RunCheckpoint):
    """Ordered epoch journal on top of the sweep-checkpoint substrate.

    ``retain`` bounds how many committed epoch *states* stay in memory
    (``None`` keeps them all — the right mode for query/analysis over a
    finished journal).  A long-lived daemon should pass a small bound:
    recovery needs only the latest committed epoch.
    """

    def __init__(
        self, path: os.PathLike | str, *, retain: Optional[int] = None
    ) -> None:
        if retain is not None and retain < 1:
            raise ValueError(f"retain must be >= 1 or None, got {retain!r}")
        self.retain = retain
        super().__init__(path)
        self._compact()

    def _compact(self) -> None:
        """Drop superseded epoch states from RAM (the file keeps them)."""
        if self.retain is None:
            return
        for epoch in self.epochs()[: -self.retain]:
            del self._entries[_epoch_key(epoch)]

    def write_meta(self, meta: dict) -> bool:
        """Stamp the run's identity; returns whether it hit the disk."""
        return self.put(_META_KEY, dict(meta))

    def meta(self) -> Optional[dict]:
        """The run identity, or None for a fresh journal."""
        hit, value = self.get(_META_KEY)
        return dict(value) if hit else None

    def commit_epoch(self, epoch: int, state: dict) -> bool:
        """Append one completed epoch's full state (the WAL commit point)."""
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch!r}")
        persisted = self.put(_epoch_key(epoch), state)
        self._compact()
        return persisted

    def epochs(self) -> list[int]:
        """Committed epoch numbers held in memory, ascending (all of them
        unless ``retain`` compacted the older states away)."""
        result = []
        for key in self.keys():
            if key.startswith(_EPOCH_PREFIX):
                result.append(int(key[len(_EPOCH_PREFIX):]))
        return result

    def latest_epoch(self) -> Optional[int]:
        """The highest committed epoch, or None before the first commit."""
        epochs = self.epochs()
        return epochs[-1] if epochs else None

    def epoch_state(self, epoch: int) -> dict:
        """The journaled state of one committed epoch."""
        hit, value = self.get(_epoch_key(epoch))
        if not hit:
            raise KeyError(f"epoch {epoch} is not in the journal")
        return value

"""Admission control: bounded queueing and explicit load-shedding.

Overload at the service boundary must be a *measured decision*, never an
unbounded queue quietly eating memory.  The controller holds a bounded
FIFO of deferred jobs and applies one of three shedding policies once the
running population is full (:data:`SHED_POLICIES`):

``reject``
    Overflow arrivals are shed immediately; the pending queue is unused.
``defer``
    Overflow arrivals park in the bounded queue and drain oldest-first as
    running jobs depart; arrivals beyond the queue bound are shed.
``degrade``
    Overflow arrivals are admitted anyway — up to ``queue_limit`` jobs
    past ``max_running`` — and the daemon coarsens its telemetry while
    oversubscribed (snapshots drop per-job rows); beyond that they shed.

Every decision is returned as a string the daemon turns into a schema-v6
``service`` event, so a report reader can reconstruct exactly what was
shed and why.  The queue contents are part of the daemon's journaled
state — a recovered daemon resumes with the same deferred jobs.
"""

from __future__ import annotations

from collections import deque

from ..workloads.job import JobSpec

__all__ = ["AdmissionController", "SHED_POLICIES"]

#: Load-shedding policies (module docstring has the semantics).
SHED_POLICIES = ("reject", "defer", "degrade")


class AdmissionController:
    """Decides admit / defer / degrade / shed for each offered job."""

    def __init__(
        self, max_running: int, queue_limit: int, policy: str = "defer"
    ) -> None:
        if max_running < 1:
            raise ValueError(f"max_running must be positive, got {max_running!r}")
        if queue_limit < 0:
            raise ValueError(
                f"queue_limit must be non-negative, got {queue_limit!r}"
            )
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {policy!r}; expected one of {SHED_POLICIES}"
            )
        self.max_running = max_running
        self.queue_limit = queue_limit
        self.policy = policy
        self.pending: deque[JobSpec] = deque()

    @property
    def queue_depth(self) -> int:
        """Jobs parked in the pending queue right now."""
        return len(self.pending)

    def offer(self, spec: JobSpec, running: int) -> str:
        """Decide one arrival's fate given the current running count.

        Returns ``"admit"`` (start it now), ``"defer"`` (parked in the
        queue), ``"degrade"`` (start it now, telemetry coarsens) or
        ``"shed"`` (dropped).  ``running`` should count jobs already in
        the engine *plus* those admitted earlier in the same poll, so a
        burst cannot overshoot the bound between steps.
        """
        if running < 0:
            raise ValueError(f"running must be non-negative, got {running!r}")
        if running < self.max_running and not self.pending:
            return "admit"
        if self.policy == "reject":
            return "shed"
        if self.policy == "defer":
            if len(self.pending) < self.queue_limit:
                self.pending.append(spec)
                return "defer"
            return "shed"
        # degrade: oversubscribe up to queue_limit extra jobs, then shed.
        if running < self.max_running + self.queue_limit:
            return "degrade"
        return "shed"

    def drain(self, running: int) -> list[JobSpec]:
        """Release deferred jobs into freed slots, oldest first."""
        if running < 0:
            raise ValueError(f"running must be non-negative, got {running!r}")
        released: list[JobSpec] = []
        while self.pending and running + len(released) < self.max_running:
            released.append(self.pending.popleft())
        return released

    # Journal integration: the queue is dynamic state the daemon must
    # carry across a crash (docs/SERVICE.md, "What is journaled").

    def state(self) -> dict:
        """Picklable snapshot of the pending queue."""
        return {"pending": list(self.pending)}

    def load_state(self, payload: dict) -> None:
        """Restore a :meth:`state` snapshot."""
        self.pending = deque(payload["pending"])

"""Scheduling-as-a-service: the long-lived, crash-resilient churn daemon.

Everything the closed batch experiments cannot exercise lives here: an
open-loop arrival stream (:mod:`repro.workloads.arrivals`) feeding a live
array-backed fluid simulation (:mod:`~repro.service.engine`) through
bounded admission control (:mod:`~repro.service.admission`), supervised
by a watchdog and a write-ahead journal (:mod:`~repro.service.journal`)
so a killed daemon replays to bit-identical state
(:mod:`~repro.service.daemon`, docs/SERVICE.md).  Exposed on the CLI as
``repro serve``.
"""

from .admission import SHED_POLICIES, AdmissionController
from .daemon import (
    ChurnDaemon,
    InjectedCrash,
    ServiceConfig,
    ServiceCrash,
    query_journal,
)
from .engine import ENGINE_POLICIES, LiveFluidEngine
from .journal import ServiceJournal

__all__ = [
    "AdmissionController",
    "SHED_POLICIES",
    "ChurnDaemon",
    "InjectedCrash",
    "ServiceConfig",
    "ServiceCrash",
    "query_journal",
    "ENGINE_POLICIES",
    "LiveFluidEngine",
    "ServiceJournal",
]

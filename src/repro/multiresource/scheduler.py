"""Multi-resource fluid simulator with MLTCP-style progress weighting (§5).

Each resource (CPU cores, network bandwidth, GPU share, ...) has a capacity;
tasks in a phase on resource R compete for R's capacity.  Under the
:class:`ProgressWeighted` policy a task's share is proportional to
``F(progress_ratio)`` where ``progress_ratio`` is the work fraction of its
*current phase* already completed — the §5 recipe of "replacing bytes_ratio
with the progress of the job".  Under :class:`EqualShare` every active task
gets an equal (capped) share, the fair-scheduler baseline.

The paper predicts the same sliding effect generalizes: tasks shift until
the high-demand phases of different tasks interleave across every resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.aggressiveness import AggressivenessFunction, default_aggressiveness
from ..fluid.allocation import water_fill
from .task import MultiResourceTask

__all__ = [
    "EqualShare",
    "ProgressWeighted",
    "TaskIteration",
    "MultiResourceResult",
    "MultiResourceSimulator",
    "run_multiresource",
]

_EPS_WORK = 1e-9
_EPS_TIME = 1e-12


class EqualShare:
    """Fair scheduler: equal capped shares within each resource."""

    name = "equal"

    def weight(self, progress_ratio: float) -> float:
        """Constant weight: every active task shares equally."""
        return 1.0


class ProgressWeighted:
    """MLTCP-style scheduler: share proportional to F(progress_ratio)."""

    name = "progress-weighted"

    def __init__(self, function: Optional[AggressivenessFunction] = None) -> None:
        self.function = function if function is not None else default_aggressiveness()

    def weight(self, progress_ratio: float) -> float:
        """F(progress): further-along tasks get the larger share."""
        return self.function(progress_ratio)


@dataclass(frozen=True)
class TaskIteration:
    """One completed cycle of one task."""

    task: str
    index: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Wall-clock length of the cycle."""
        return self.end - self.start


@dataclass
class _TaskRuntime:
    task: MultiResourceTask
    phase_index: int = 0
    remaining_work: float = 0.0
    phase_total: float = 0.0
    iteration_index: int = 0
    iteration_start: float = 0.0
    started: bool = False
    #: Jitter sleep (seconds) still to elapse before the next cycle begins.
    sleep_remaining: float = 0.0

    @property
    def current_resource(self) -> str:
        """Resource consumed by the task's current phase."""
        return self.task.phases[self.phase_index].resource

    @property
    def current_demand(self) -> float:
        """Peak units the current phase can consume in parallel."""
        return self.task.phases[self.phase_index].demand

    @property
    def progress_ratio(self) -> float:
        """Fraction of the current phase's work already done (§5's ratio)."""
        if self.phase_total <= 0:
            return 0.0
        return min(1.0, 1.0 - self.remaining_work / self.phase_total)


@dataclass
class MultiResourceResult:
    """Iterations per task from one multi-resource run."""

    tasks: tuple[MultiResourceTask, ...]
    policy_name: str
    iterations: list[TaskIteration] = field(default_factory=list)

    def iteration_times(self, task: str) -> np.ndarray:
        """Durations (s) of the task's completed cycles."""
        return np.array(
            [it.duration for it in self.iterations if it.task == task]
        )

    def mean_iteration_by_round(self) -> np.ndarray:
        """Average duration of the i-th cycle across tasks."""
        per_task = [self.iteration_times(t.name) for t in self.tasks]
        rounds = min(len(x) for x in per_task)
        if rounds == 0:
            return np.array([])
        return np.array(
            [float(np.mean([x[i] for x in per_task])) for i in range(rounds)]
        )


class MultiResourceSimulator:
    """Event-driven progressive-filling simulator over named resources."""

    def __init__(
        self,
        tasks: Sequence[MultiResourceTask],
        capacities: dict[str, float],
        policy: Optional[ProgressWeighted | EqualShare] = None,
        seed: Optional[int] = 0,
        quantum: float = 0.02,
    ) -> None:
        if not tasks:
            raise ValueError("need at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"task names must be unique, got {names}")
        for task in tasks:
            for resource in task.resources():
                if resource not in capacities and not resource.endswith("-think"):
                    raise ValueError(
                        f"{task.name}: no capacity declared for resource "
                        f"{resource!r}"
                    )
        if any(c <= 0 for c in capacities.values()):
            raise ValueError("capacities must be positive")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.tasks = tuple(tasks)
        self.capacities = dict(capacities)
        self.policy = policy if policy is not None else EqualShare()
        self.quantum = quantum
        self._rng = np.random.default_rng(seed) if seed is not None else None

    def run(self, max_iterations: int) -> MultiResourceResult:
        """Simulate until every task completed ``max_iterations`` cycles."""
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {max_iterations!r}")
        runtimes = [_TaskRuntime(task=t) for t in self.tasks]
        result = MultiResourceResult(
            tasks=self.tasks, policy_name=self.policy.name
        )
        now = 0.0
        longest = max(t.ideal_iteration_time for t in self.tasks)
        max_steps = int(100 * len(self.tasks) * max(1.0, 5 * longest * max_iterations / self.quantum))

        for _step in range(max_steps):
            self._transitions(runtimes, now, result)
            if all(rt.iteration_index >= max_iterations for rt in runtimes):
                break
            rates = self._allocate(runtimes, now)
            dt = self._next_dt(runtimes, rates)
            for rt in runtimes:
                if not rt.started:
                    continue
                if rt.sleep_remaining > _EPS_TIME:
                    rt.sleep_remaining = max(0.0, rt.sleep_remaining - dt)
                else:
                    rt.remaining_work = max(
                        0.0, rt.remaining_work - rates.get(rt.task.name, 0.0) * dt
                    )
            now += dt
        else:
            raise RuntimeError(
                "multi-resource simulation did not finish; zero-rate livelock?"
            )
        return result

    # -- internals ----------------------------------------------------------

    def _transitions(
        self, runtimes: list[_TaskRuntime], now: float, result: MultiResourceResult
    ) -> None:
        for rt in runtimes:
            if not rt.started:
                if now >= rt.task.start_offset - _EPS_TIME:
                    rt.started = True
                    rt.iteration_start = now
                    self._enter_phase(rt, 0)
                continue
            if rt.sleep_remaining > _EPS_TIME:
                continue
            while rt.remaining_work <= _EPS_WORK and rt.sleep_remaining <= _EPS_TIME:
                next_phase = rt.phase_index + 1
                if next_phase >= len(rt.task.phases):
                    # Cycle complete: the §4 jitter delays the next cycle.
                    jitter = rt.task.sample_jitter(self._rng)
                    result.iterations.append(
                        TaskIteration(
                            task=rt.task.name,
                            index=rt.iteration_index,
                            start=rt.iteration_start,
                            end=now + jitter,
                        )
                    )
                    rt.iteration_index += 1
                    rt.iteration_start = now + jitter
                    rt.sleep_remaining = jitter
                    self._enter_phase(rt, 0)
                else:
                    self._enter_phase(rt, next_phase)

    def _enter_phase(self, rt: _TaskRuntime, index: int) -> None:
        rt.phase_index = index
        phase = rt.task.phases[index]
        rt.remaining_work = phase.work
        rt.phase_total = phase.work

    def _allocate(
        self, runtimes: list[_TaskRuntime], now: float
    ) -> dict[str, float]:
        rates: dict[str, float] = {}
        by_resource: dict[str, list[_TaskRuntime]] = {}
        for rt in runtimes:
            if (
                rt.started
                and rt.sleep_remaining <= _EPS_TIME
                and rt.remaining_work > _EPS_WORK
            ):
                by_resource.setdefault(rt.current_resource, []).append(rt)
        for resource, group in by_resource.items():
            capacity = self.capacities.get(resource)
            if capacity is None:
                # Private think resources are uncontended.
                for rt in group:
                    rates[rt.task.name] = rt.current_demand
                continue
            demands = {rt.task.name: rt.current_demand for rt in group}
            weights = {
                rt.task.name: self.policy.weight(rt.progress_ratio) for rt in group
            }
            rates.update(water_fill(demands, weights, capacity))
        return rates

    def _next_dt(
        self, runtimes: list[_TaskRuntime], rates: dict[str, float]
    ) -> float:
        candidates = [self.quantum]
        for rt in runtimes:
            if not rt.started:
                candidates.append(max(_EPS_TIME, rt.task.start_offset))
                continue
            if rt.sleep_remaining > _EPS_TIME:
                candidates.append(rt.sleep_remaining)
                continue
            rate = rates.get(rt.task.name, 0.0)
            if rate > 0 and rt.remaining_work > _EPS_WORK:
                candidates.append(rt.remaining_work / rate)
        positive = [c for c in candidates if c > _EPS_TIME]
        return min(positive) if positive else _EPS_TIME


def run_multiresource(
    tasks: Sequence[MultiResourceTask],
    capacities: dict[str, float],
    policy: Optional[ProgressWeighted | EqualShare] = None,
    max_iterations: int = 40,
    seed: Optional[int] = 0,
    quantum: float = 0.02,
) -> MultiResourceResult:
    """One-call convenience wrapper around :class:`MultiResourceSimulator`."""
    simulator = MultiResourceSimulator(
        tasks, capacities, policy=policy, seed=seed, quantum=quantum
    )
    return simulator.run(max_iterations=max_iterations)

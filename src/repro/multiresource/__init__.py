"""§5 generalization: MLTCP-style progress weighting beyond the network."""

from .scheduler import (
    EqualShare,
    MultiResourceResult,
    MultiResourceSimulator,
    ProgressWeighted,
    TaskIteration,
    run_multiresource,
)
from .task import MultiResourceTask, ResourcePhase, two_phase_task

__all__ = [
    "MultiResourceTask",
    "ResourcePhase",
    "two_phase_task",
    "EqualShare",
    "ProgressWeighted",
    "MultiResourceSimulator",
    "MultiResourceResult",
    "TaskIteration",
    "run_multiresource",
]

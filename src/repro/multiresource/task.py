"""Periodic multi-resource tasks (paper §5's generalization).

The paper's discussion extends MLTCP beyond the network: "the aggressiveness
function F(bytes_ratio) is generalizable to other resource scheduling
problems by replacing bytes_ratio with the progress of the job".  A
:class:`MultiResourceTask` is a periodic job whose iteration is a *cycle of
phases*, each consuming one named resource (e.g. ``cpu`` then ``network``
then ``gpu``); the next iteration starts when the cycle completes — the same
arrival/completion dependency DNN traffic has on every resource it touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ResourcePhase", "MultiResourceTask"]


@dataclass(frozen=True)
class ResourcePhase:
    """One phase of a task's iteration on one resource.

    ``work`` is in resource-units × seconds (e.g. core-seconds); ``demand``
    is the peak number of units the phase can consume in parallel, so the
    phase lasts ``work / demand`` seconds when fully served.
    """

    resource: str
    work: float
    demand: float

    def __post_init__(self) -> None:
        if not self.resource:
            raise ValueError("resource name must be non-empty")
        if self.work <= 0:
            raise ValueError(f"{self.resource}: work must be positive, got {self.work!r}")
        if self.demand <= 0:
            raise ValueError(
                f"{self.resource}: demand must be positive, got {self.demand!r}"
            )

    @property
    def ideal_duration(self) -> float:
        """Phase length when the task gets its full demand."""
        return self.work / self.demand


@dataclass(frozen=True)
class MultiResourceTask:
    """A periodic task cycling through resource phases.

    The network-only model is the special case of two phases where the
    second ("compute") resource is uncontended.
    """

    name: str
    phases: tuple[ResourcePhase, ...]
    start_offset: float = 0.0
    jitter_sigma: float = 0.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"{self.name}: need at least one phase")
        if self.start_offset < 0:
            raise ValueError(f"{self.name}: start_offset must be non-negative")
        if self.jitter_sigma < 0:
            raise ValueError(f"{self.name}: jitter_sigma must be non-negative")

    @property
    def ideal_iteration_time(self) -> float:
        """Cycle length when every phase gets its full demand."""
        return sum(phase.ideal_duration for phase in self.phases)

    def resources(self) -> set[str]:
        """Names of the resources this task touches."""
        return {phase.resource for phase in self.phases}

    def phase_fraction(self, resource: str) -> float:
        """Fraction of the ideal iteration spent on ``resource``."""
        ideal = self.ideal_iteration_time
        return (
            sum(p.ideal_duration for p in self.phases if p.resource == resource)
            / ideal
        )

    def sample_jitter(self, rng: Optional[np.random.Generator]) -> float:
        """Extra per-iteration delay from the §4 Gaussian noise model."""
        if self.jitter_sigma == 0.0 or rng is None:
            return 0.0
        return max(0.0, float(rng.normal(0.0, self.jitter_sigma)))


def two_phase_task(
    name: str,
    resource: str,
    work: float,
    demand: float,
    think_time: float,
    jitter_sigma: float = 0.0,
) -> MultiResourceTask:
    """Convenience: one contended phase plus an uncontended think phase.

    The think phase is modelled as a private resource ``{name}-think`` with
    demand 1, so it never competes with anything — exactly the network
    model's computation gap.
    """
    return MultiResourceTask(
        name=name,
        phases=(
            ResourcePhase(resource=resource, work=work, demand=demand),
            ResourcePhase(resource=f"{name}-think", work=think_time, demand=1.0),
        ),
        jitter_sigma=jitter_sigma,
    )

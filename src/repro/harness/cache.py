"""Content-addressed result cache for experiment points.

Role in the pipeline: the experiment runner (:mod:`repro.harness.runner`)
asks this module for a stable key per (experiment name, parameters, seed,
package version) and stores each point's result under it, so re-running the
benchmark suite or a parameter sweep only recomputes points whose inputs
actually changed.  The packet-level simulator is 100-1000x slower than the
fluid model (docs/SIMULATORS.md), so skipping unchanged packet points is
where most wall-clock is saved.

Entries are written as ``<digest[:2]>/<digest>.pkl`` under the cache
directory: a small magic header, a SHA-256 checksum of the payload, then the
pickled result.  A corrupted or truncated entry fails the checksum (or the
unpickle) and is silently discarded and recomputed — never fatal.  Cache-key
semantics and invalidation are documented in docs/HARNESS.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Mapping, Optional, Tuple

__all__ = ["ResultCache", "point_key", "default_cache_dir"]

#: Bump to invalidate every previously written entry (format change).
CACHE_FORMAT_VERSION = 1

#: File header guarding against reading arbitrary files as cache entries.
_MAGIC = b"repro-cache-v1\n"

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve where cache entries live when no directory is given.

    Precedence: ``$REPRO_CACHE_DIR``, then ``$XDG_CACHE_HOME/repro``, then
    ``~/.cache/repro``.  The benchmark suite overrides this with a
    repository-local directory (see ``benchmarks/_common.py``).
    """
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _canonical(value: object) -> object:
    """Reduce a parameter value to a JSON-stable form for hashing.

    Mappings are key-sorted, sequences become lists, numpy scalars collapse
    to their Python equivalents, and anything else falls back to ``repr``
    (stable for the dataclasses used as experiment parameters).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _canonical(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    # numpy scalars expose item(); arrays expose tolist().
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "shape", None) == ():
        return _canonical(value.item())
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _canonical(value.tolist())
    return repr(value)


def point_key(
    experiment: str,
    params: Mapping[str, object],
    seed: Optional[int] = None,
    version: Optional[str] = None,
) -> str:
    """Stable SHA-256 key of one experiment point.

    The key covers the experiment name, the (order-insensitive) parameter
    mapping, the seed, and the ``repro`` package version — so a version bump
    invalidates every cached result, and two sweeps sharing a cache directory
    never collide unless they are genuinely the same computation.
    """
    if version is None:
        from .. import __version__ as version  # deferred: avoids import cycle
    payload = json.dumps(
        {
            "cache_format": CACHE_FORMAT_VERSION,
            "experiment": experiment,
            "params": _canonical(params),
            "seed": _canonical(seed),
            "version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed store of pickled experiment results, keyed by hash.

    Role in the pipeline: handed to :class:`repro.harness.runner.\
ExperimentRunner` (or to :func:`repro.harness.sweep.sweep` via its ``cache``
    argument) to make repeated sweeps incremental.  All operations are
    best-effort: a missing directory, unreadable entry, or unpicklable value
    degrades to a cache miss / no-op rather than an error.
    """

    def __init__(self, directory: Optional[os.PathLike | str] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, object]:
        """Look up ``key``; returns ``(hit, value)``.

        A corrupted entry (bad magic, checksum mismatch, unpicklable body) is
        deleted and reported as a miss, so a damaged cache heals itself on
        the next run instead of poisoning results or crashing the sweep.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return False, None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic header")
            digest_end = len(_MAGIC) + 32
            checksum, payload = blob[len(_MAGIC):digest_end], blob[digest_end:]
            if hashlib.sha256(payload).digest() != checksum:
                raise ValueError("checksum mismatch")
            return True, pickle.loads(payload)
        except Exception:
            # Corrupt entry: discard (best-effort) and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return False, None

    def put(self, key: str, value: object) -> bool:
        """Store ``value`` under ``key``; returns whether it was written.

        Unpicklable values (e.g. results holding open simulators) are
        skipped silently — the sweep still returns them, they just will not
        be cache hits next time.  Writes are atomic (temp file + rename) so
        a crashed run never leaves a truncated entry behind.
        """
        try:
            payload = pickle.dumps(value)
        except Exception:
            return False
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(_MAGIC)
                    handle.write(hashlib.sha256(payload).digest())
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def clear(self) -> int:
        """Delete every entry; returns how many were removed (invalidation)."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for entry in self.directory.glob("??/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        """Number of entries currently stored (for tests and reports)."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.pkl"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultCache {self.directory} ({len(self)} entries)>"

"""Per-point instrumentation and structured JSON run-reports.

Role in the pipeline: a :class:`RunTelemetry` rides along with the
experiment runner (:mod:`repro.harness.runner`) and records, for every
executed point, the wall time, the number of discrete-event callbacks the
simulators processed (via :func:`repro.simulator.engine.\
total_events_processed`), whether the point was a cache hit, and how it ran
(cached / sequential / pool worker / resumed from a checkpoint / failed).
Since schema v2 it also accumulates a ``degradations`` array — every
injected fault, retry, timeout and crash the run survived
(:meth:`RunTelemetry.record_degradation`).  Schema v3 adds the ``guards``
section: invariant violations, MLTCP degradation episodes and watchdog
fires collected from the runtime guardrail
(:meth:`RunTelemetry.record_guard_event`, docs/ROBUSTNESS.md).  Schema v4
adds the ``recovery`` section: per-fault recovery SLOs from chaos
campaigns (:meth:`RunTelemetry.record_recovery`).  Schema v5 adds the
``verification`` section: bounded-model-checking verdicts from
``repro verify`` (:meth:`RunTelemetry.record_verification`,
docs/VERIFICATION.md).  Schema v6 adds the ``service`` section: periodic
snapshots from the long-lived scheduling daemon — admitted/shed/deferred
counts, queue depth, recovery events and SLO attainment
(:meth:`RunTelemetry.record_service_snapshot`, docs/SERVICE.md).
:meth:`RunTelemetry.as_report`
turns that into the JSON run-report the benchmarks write next to their text
output in ``bench_reports/`` (``<name>.run.json``); the report format is
frozen by :data:`RUN_REPORT_SCHEMA` (checked into
``docs/run_report.schema.json``) and checked by :func:`validate_run_report`.
How to read a report is documented in docs/HARNESS.md.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

__all__ = [
    "PointRecord",
    "RunTelemetry",
    "RUN_REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "DEGRADATION_KINDS",
    "GUARD_EVENT_KINDS",
    "SERVICE_EVENT_KINDS",
    "VERIFICATION_VERDICTS",
    "validate_run_report",
]

#: Version stamped into every run-report; bump on breaking format changes.
#: v2 added the ``degradations`` section and the ``resumed``/``failed``
#: point modes; v3 added the ``guards`` section (invariant violations,
#: MLTCP degradation episodes, watchdog fires); v4 added the ``recovery``
#: section (per-fault recovery SLOs from chaos campaigns,
#: docs/ROBUSTNESS.md); v5 added the ``verification`` section (bounded
#: model checking verdicts from ``repro verify``, docs/VERIFICATION.md);
#: v6 added the ``service`` section (periodic churn-daemon snapshots,
#: docs/SERVICE.md).  All are optional additions — earlier reports still
#: validate.
REPORT_SCHEMA_VERSION = 6

#: What a verification entry's ``verdict`` may be: ``unsat`` (the property
#: was proved over the searched space), ``sat`` (a counterexample was
#: found), ``unknown`` (the per-query solver budget expired), ``skipped``
#: (the requested backend is unavailable, e.g. z3 not installed).
VERIFICATION_VERDICTS = ("unsat", "sat", "unknown", "skipped")

#: What a degradation entry's ``kind`` may be: ``retry`` (a failed attempt
#: that was retried), ``timeout`` (a point blew its wall-clock budget),
#: ``crash`` (a pool worker died hard), ``error`` (a point failed
#: terminally with an exception), ``fault`` (an injected fault from a
#: :class:`repro.faults.schedule.FaultSchedule` fired).
DEGRADATION_KINDS = ("retry", "timeout", "crash", "error", "fault")

#: What a guard event's ``kind`` may be: ``violation`` (an invariant
#: monitor recorded an :class:`repro.guards.InvariantViolation`),
#: ``degradation`` (an MLTCP sender fell back to vanilla CC because its
#: tracker estimate became unreliable), ``watchdog`` (a stall watchdog
#: fired — engine stall, event storm, or a harness wall-clock timeout).
GUARD_EVENT_KINDS = ("violation", "degradation", "watchdog")

#: What a service snapshot event's ``kind`` may be: ``admit`` (a job was
#: admitted into the live simulation), ``defer`` (parked in the bounded
#: pending queue), ``shed`` (rejected outright under overload), ``degrade``
#: (admitted past capacity under the degrade policy — telemetry coarsens),
#: ``depart`` (a job finished its iterations and left), ``recovery`` (the
#: supervisor restarted the stepper and replayed the journal), ``fallback``
#: (churn outpaced the iteration signal and weights clamped to vanilla CC),
#: ``fault`` (an injected fabric fault transitioned while the daemon ran).
SERVICE_EVENT_KINDS = (
    "admit",
    "defer",
    "shed",
    "degrade",
    "depart",
    "recovery",
    "fallback",
    "fault",
)


@dataclass(frozen=True)
class PointRecord:
    """Instrumentation of one executed experiment point.

    ``mode`` says where the value came from: ``"cached"`` (served from the
    result cache), ``"sequential"`` (computed in-process), ``"worker"``
    (computed in a process-pool worker), ``"resumed"`` (served from a sweep
    checkpoint) or ``"failed"`` (the point exhausted its attempts and its
    result slot holds a :class:`repro.harness.runner.FailedPoint`).
    ``events_processed`` counts the simulator callbacks the point triggered
    (0 for cache hits).
    """

    params: dict
    seed: Optional[int]
    wall_time_s: float
    events_processed: int
    cache_hit: bool
    mode: str

    def as_dict(self) -> dict:
        """JSON-ready form of this record (one entry of ``report["points"]``)."""
        return {
            "params": self.params,
            "seed": self.seed,
            "wall_time_s": self.wall_time_s,
            "events_processed": self.events_processed,
            "cache_hit": self.cache_hit,
            "mode": self.mode,
        }


@dataclass
class RunTelemetry:
    """Accumulates per-point records and emits the JSON run-report.

    Create one per logical experiment (one benchmark file, one CLI
    invocation), pass it to the runner, then call :meth:`as_report` /
    :meth:`write` once the sweep finishes.
    """

    experiment: str
    workers: Optional[int] = None
    records: list[PointRecord] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    degradations: list[dict] = field(default_factory=list)
    guard_events: list[dict] = field(default_factory=list)
    link_utilization: list[dict] = field(default_factory=list)
    recovery: list[dict] = field(default_factory=list)
    verification: list[dict] = field(default_factory=list)
    service: list[dict] = field(default_factory=list)
    _started: float = field(default_factory=time.perf_counter)

    def record_point(
        self,
        params: Mapping[str, object],
        wall_time_s: float,
        events_processed: int,
        cache_hit: bool,
        mode: str,
    ) -> None:
        """Append one point's instrumentation (called by the runner)."""
        params = dict(params)
        seed = params.pop("seed", None)
        self.records.append(
            PointRecord(
                params=params,
                seed=seed if isinstance(seed, int) else None,
                wall_time_s=float(wall_time_s),
                events_processed=int(events_processed),
                cache_hit=bool(cache_hit),
                mode=mode,
            )
        )

    def note(self, message: str) -> None:
        """Record a free-form observation (e.g. a fallback to sequential)."""
        self.notes.append(message)

    def record_degradation(
        self,
        kind: str,
        detail: str,
        params: Optional[Mapping[str, object]] = None,
        attempt: Optional[int] = None,
    ) -> None:
        """Record one resilience event: a retry, timeout, crash, terminal
        point failure, or an injected fault firing.  These accumulate into
        the run-report's ``degradations`` array so a report reader can
        reconstruct everything that went wrong (or was made to go wrong)
        without the logs."""
        if kind not in DEGRADATION_KINDS:
            raise ValueError(
                f"unknown degradation kind {kind!r}; expected one of "
                f"{DEGRADATION_KINDS}"
            )
        self.degradations.append(
            {
                "kind": kind,
                "detail": detail,
                "params": dict(params) if params is not None else None,
                "attempt": attempt,
            }
        )

    def record_guard_event(
        self,
        kind: str,
        detail: str,
        *,
        guard: Optional[str] = None,
        subject: Optional[str] = None,
        time: Optional[float] = None,
        params: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one runtime-guardrail event (schema v3, docs/ROBUSTNESS.md).

        ``kind`` partitions the event into the report's ``guards`` section:
        ``"violation"`` → ``guards.violations``, ``"degradation"`` →
        ``guards.degradations``, ``"watchdog"`` → ``guards.watchdog_fires``.
        ``guard``/``subject``/``time`` carry the fields of an
        :class:`repro.guards.InvariantViolation` when the event came from
        one; harness-level watchdogs leave them ``None``.
        """
        if kind not in GUARD_EVENT_KINDS:
            raise ValueError(
                f"unknown guard event kind {kind!r}; expected one of "
                f"{GUARD_EVENT_KINDS}"
            )
        self.guard_events.append(
            {
                "kind": kind,
                "detail": detail,
                "guard": guard,
                "subject": subject,
                "time": time,
                "params": dict(params) if params is not None else None,
            }
        )

    def record_link_utilization(
        self,
        link: str,
        utilization: float,
        *,
        capacity_gbps: Optional[float] = None,
        policy: Optional[str] = None,
        substrate: Optional[str] = None,
        params: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one link's mean utilization over a run (schema v3,
        optional ``link_utilization`` section).

        ``utilization`` is the fraction of the link's capacity the run
        used (0.0–1.0ish; transient queueing can push a packet-level
        measurement slightly above 1 counting headers).  ``policy`` and
        ``substrate`` say which run the sample came from when one report
        carries several (e.g. mltcp vs fair on fluid and packet);
        ``params`` carries the experiment point, like degradations do.
        """
        if utilization < 0:
            raise ValueError(
                f"utilization must be non-negative, got {utilization!r}"
            )
        self.link_utilization.append(
            {
                "link": link,
                "utilization": float(utilization),
                "capacity_gbps": (
                    float(capacity_gbps) if capacity_gbps is not None else None
                ),
                "policy": policy,
                "substrate": substrate,
                "params": dict(params) if params is not None else None,
            }
        )

    def record_recovery(
        self,
        fault: str,
        *,
        strike_time: float,
        recovery_time: float,
        time_to_reroute: float,
        time_to_reinterleave: Optional[float],
        goodput_lost_bits: float,
        interleavable: bool,
        policy: Optional[str] = None,
        substrate: Optional[str] = None,
        campaign: Optional[int] = None,
        params: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one fault's recovery SLOs (schema v4, optional
        ``recovery`` section; docs/ROBUSTNESS.md).

        Mirrors :meth:`repro.metrics.recovery.RecoverySLO.as_record` plus
        run context: ``policy``/``substrate`` say which run rode out the
        fault, ``campaign`` which chaos campaign scheduled it.
        ``time_to_reinterleave`` is ``None`` when the run never re-reached
        the interleavable condition after repair.
        """
        if time_to_reroute < 0:
            raise ValueError(
                f"time_to_reroute must be non-negative, got {time_to_reroute!r}"
            )
        if goodput_lost_bits < 0:
            raise ValueError(
                f"goodput_lost_bits must be non-negative, got {goodput_lost_bits!r}"
            )
        self.recovery.append(
            {
                "fault": fault,
                "strike_time": float(strike_time),
                "recovery_time": float(recovery_time),
                "time_to_reroute": float(time_to_reroute),
                "time_to_reinterleave": (
                    float(time_to_reinterleave)
                    if time_to_reinterleave is not None
                    else None
                ),
                "goodput_lost_bits": float(goodput_lost_bits),
                "interleavable": bool(interleavable),
                "reinterleaved": time_to_reinterleave is not None,
                "policy": policy,
                "substrate": substrate,
                "campaign": campaign,
                "params": dict(params) if params is not None else None,
            }
        )

    def record_verification(
        self,
        property: str,
        *,
        version: int,
        verdict: str,
        backend: str,
        states_checked: int = 0,
        elapsed_s: float = 0.0,
        params: Optional[Mapping[str, object]] = None,
        reason: Optional[str] = None,
    ) -> None:
        """Record one bounded-model-checking verdict (schema v5, optional
        ``verification`` section; docs/VERIFICATION.md).

        One entry per property query run by ``repro verify``:
        ``verdict`` is one of :data:`VERIFICATION_VERDICTS`, ``backend``
        names the solver (``exhaustive`` / ``z3``), ``states_checked``
        the exhaustive search size (0 for symbolic backends) and
        ``reason`` carries timeout/skip detail when the verdict is
        inconclusive.
        """
        if verdict not in VERIFICATION_VERDICTS:
            raise ValueError(
                f"unknown verification verdict {verdict!r}; expected one of "
                f"{VERIFICATION_VERDICTS}"
            )
        if states_checked < 0:
            raise ValueError(
                f"states_checked must be non-negative, got {states_checked!r}"
            )
        if elapsed_s < 0:
            raise ValueError(f"elapsed_s must be non-negative, got {elapsed_s!r}")
        self.verification.append(
            {
                "property": property,
                "version": int(version),
                "verdict": verdict,
                "backend": backend,
                "states_checked": int(states_checked),
                "elapsed_s": float(elapsed_s),
                "params": dict(params) if params is not None else None,
                "reason": reason,
            }
        )

    def record_service_snapshot(
        self,
        *,
        epoch: int,
        time: float,
        running: int,
        queue_depth: int,
        admitted: int,
        deferred: int,
        shed: int,
        degraded: int,
        departed: int,
        recoveries: int,
        slo_attainment: Optional[float] = None,
        coarse: bool = False,
        events: Optional[list[dict]] = None,
        jobs: Optional[list[dict]] = None,
    ) -> dict:
        """Record one periodic churn-daemon snapshot (schema v6, optional
        ``service`` section; docs/SERVICE.md).

        Counters (``admitted`` … ``recoveries``) are cumulative since the
        daemon started, so the last snapshot of a run doubles as its final
        tally.  ``events`` lists every admission/shedding/recovery decision
        since the previous snapshot (kinds in :data:`SERVICE_EVENT_KINDS`);
        ``jobs`` carries per-running-job telemetry and is dropped —
        ``coarse=True`` — when the degrade-to-coarser-telemetry shedding
        policy is active.  Returns the appended entry so callers can mirror
        it to a live snapshot sink."""
        counters = {
            "epoch": epoch,
            "running": running,
            "queue_depth": queue_depth,
            "admitted": admitted,
            "deferred": deferred,
            "shed": shed,
            "degraded": degraded,
            "departed": departed,
            "recoveries": recoveries,
        }
        for name, value in counters.items():
            if value < 0:
                raise ValueError(
                    f"service snapshot: {name} must be non-negative, got {value!r}"
                )
        if slo_attainment is not None and not 0.0 <= slo_attainment <= 1.0:
            raise ValueError(
                f"service snapshot: slo_attainment must be in [0, 1], got "
                f"{slo_attainment!r}"
            )
        for event in events or ():
            if event.get("kind") not in SERVICE_EVENT_KINDS:
                raise ValueError(
                    f"unknown service event kind {event.get('kind')!r}; "
                    f"expected one of {SERVICE_EVENT_KINDS}"
                )
        entry = {
            "epoch": int(epoch),
            "time": float(time),
            "running": int(running),
            "queue_depth": int(queue_depth),
            "admitted": int(admitted),
            "deferred": int(deferred),
            "shed": int(shed),
            "degraded": int(degraded),
            "departed": int(departed),
            "recoveries": int(recoveries),
            "slo_attainment": (
                float(slo_attainment) if slo_attainment is not None else None
            ),
            "coarse": bool(coarse),
            "events": [dict(e) for e in events or ()],
            "jobs": [dict(j) for j in jobs] if jobs is not None else None,
        }
        self.service.append(entry)
        return entry

    @property
    def cache_hits(self) -> int:
        """Points served from the result cache."""
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        """Points that had to be computed."""
        return sum(1 for r in self.records if not r.cache_hit)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of points served from cache (0.0 with no points)."""
        if not self.records:
            return 0.0
        return self.cache_hits / len(self.records)

    @property
    def events_processed(self) -> int:
        """Simulator callbacks executed across all computed points."""
        return sum(r.events_processed for r in self.records)

    @property
    def failed_points(self) -> int:
        """Points that failed terminally (mode ``"failed"``)."""
        return sum(1 for r in self.records if r.mode == "failed")

    @property
    def resumed_points(self) -> int:
        """Points served from a sweep checkpoint (mode ``"resumed"``)."""
        return sum(1 for r in self.records if r.mode == "resumed")

    def as_report(self) -> dict:
        """The structured run-report (validated by ``RUN_REPORT_SCHEMA``)."""
        from .. import __version__  # deferred: avoids import cycle

        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "experiment": self.experiment,
            "repro_version": __version__,
            "workers": self.workers,
            "totals": {
                "points": len(self.records),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": self.cache_hit_rate,
                "failed_points": self.failed_points,
                "resumed_points": self.resumed_points,
                "wall_time_s": time.perf_counter() - self._started,
                "point_wall_time_s": sum(r.wall_time_s for r in self.records),
                "events_processed": self.events_processed,
            },
            "points": [r.as_dict() for r in self.records],
            "notes": list(self.notes),
            "degradations": [dict(d) for d in self.degradations],
            "link_utilization": [dict(u) for u in self.link_utilization],
            "recovery": [dict(r) for r in self.recovery],
            "verification": [dict(v) for v in self.verification],
            "service": [dict(s) for s in self.service],
            "guards": {
                "violations": [
                    dict(e) for e in self.guard_events if e["kind"] == "violation"
                ],
                "degradations": [
                    dict(e) for e in self.guard_events if e["kind"] == "degradation"
                ],
                "watchdog_fires": [
                    dict(e) for e in self.guard_events if e["kind"] == "watchdog"
                ],
            },
        }

    def write(self, path: Path | str) -> Path:
        """Write :meth:`as_report` as JSON to ``path`` and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_report(), indent=2, default=_json_default) + "\n")
        return path

    def summary_line(self) -> str:
        """One-line human summary for terminal output."""
        totals = self.as_report()["totals"]
        return (
            f"[runner] {self.experiment}: {totals['points']} points, "
            f"{totals['cache_hits']} cache hits, "
            f"{totals['events_processed']} sim events, "
            f"{totals['wall_time_s']:.2f} s"
            + (f", workers={self.workers}" if self.workers else "")
            + (
                f", {totals['failed_points']} FAILED"
                if totals["failed_points"]
                else ""
            )
            + (
                f", {len(self.degradations)} degradation(s)"
                if self.degradations
                else ""
            )
            + (
                f", {len(self.guard_events)} guard event(s)"
                if self.guard_events
                else ""
            )
        )


def _json_default(value: object) -> object:
    """Last-resort JSON encoding for parameter values (numpy scalars, ...)."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return value.item()
        except Exception:  # repro-lint: disable=GRD001 — fall through to repr
            pass
    return repr(value)


#: One entry of the v3 ``guards`` arrays; shared by all three partitions.
_GUARD_EVENT_SCHEMA: dict = {
    "type": "object",
    "required": ["detail"],
    "properties": {
        "kind": {"enum": list(GUARD_EVENT_KINDS)},
        "detail": {"type": "string"},
        "guard": {"type": ["string", "null"]},
        "subject": {"type": ["string", "null"]},
        "time": {"type": ["number", "null"]},
        "params": {"type": ["object", "null"]},
    },
}

#: The run-report contract (a draft-07 JSON-Schema subset).  The canonical
#: on-disk copy lives at docs/run_report.schema.json; a unit test keeps the
#: two in sync so external tooling can rely on the checked-in file.
RUN_REPORT_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro experiment run-report",
    "type": "object",
    "required": [
        "schema_version",
        "experiment",
        "repro_version",
        "workers",
        "totals",
        "points",
        "notes",
    ],
    "properties": {
        "schema_version": {"type": "integer", "enum": [1, 2, 3, 4, 5, 6]},
        "experiment": {"type": "string"},
        "repro_version": {"type": "string"},
        "workers": {"type": ["integer", "null"], "minimum": 1},
        "totals": {
            "type": "object",
            "required": [
                "points",
                "cache_hits",
                "cache_misses",
                "cache_hit_rate",
                "wall_time_s",
                "point_wall_time_s",
                "events_processed",
            ],
            "properties": {
                "points": {"type": "integer", "minimum": 0},
                "cache_hits": {"type": "integer", "minimum": 0},
                "cache_misses": {"type": "integer", "minimum": 0},
                "cache_hit_rate": {"type": "number", "minimum": 0},
                "failed_points": {"type": "integer", "minimum": 0},
                "resumed_points": {"type": "integer", "minimum": 0},
                "wall_time_s": {"type": "number", "minimum": 0},
                "point_wall_time_s": {"type": "number", "minimum": 0},
                "events_processed": {"type": "integer", "minimum": 0},
            },
        },
        "points": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "params",
                    "seed",
                    "wall_time_s",
                    "events_processed",
                    "cache_hit",
                    "mode",
                ],
                "properties": {
                    "params": {"type": "object"},
                    "seed": {"type": ["integer", "null"]},
                    "wall_time_s": {"type": "number", "minimum": 0},
                    "events_processed": {"type": "integer", "minimum": 0},
                    "cache_hit": {"type": "boolean"},
                    "mode": {
                        "enum": [
                            "cached",
                            "sequential",
                            "worker",
                            "resumed",
                            "failed",
                        ]
                    },
                },
            },
        },
        "notes": {"type": "array", "items": {"type": "string"}},
        # Added in schema_version 2, deliberately not in ``required`` so v1
        # reports keep validating: every resilience event of the run.
        "degradations": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["kind", "detail"],
                "properties": {
                    "kind": {"enum": list(DEGRADATION_KINDS)},
                    "detail": {"type": "string"},
                    "params": {"type": ["object", "null"]},
                    "attempt": {"type": ["integer", "null"], "minimum": 1},
                },
            },
        },
        # Also a v3 optional section: per-link mean utilization from fabric
        # runs (docs/TOPOLOGIES.md).  One entry per (link, run); ``policy``
        # and ``substrate`` disambiguate multi-run reports.
        "link_utilization": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["link", "utilization"],
                "properties": {
                    "link": {"type": "string"},
                    "utilization": {"type": "number", "minimum": 0},
                    "capacity_gbps": {"type": ["number", "null"]},
                    "policy": {"type": ["string", "null"]},
                    "substrate": {"type": ["string", "null"]},
                    "params": {"type": ["object", "null"]},
                },
            },
        },
        # Added in schema_version 4, also optional: per-fault recovery SLOs
        # from chaos campaigns (docs/ROBUSTNESS.md).  ``time_to_reinterleave``
        # is null when the run never re-reached the interleavable condition.
        "recovery": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "fault",
                    "strike_time",
                    "recovery_time",
                    "time_to_reroute",
                    "time_to_reinterleave",
                    "goodput_lost_bits",
                    "interleavable",
                    "reinterleaved",
                ],
                "properties": {
                    "fault": {"type": "string"},
                    "strike_time": {"type": "number", "minimum": 0},
                    "recovery_time": {"type": "number", "minimum": 0},
                    "time_to_reroute": {"type": "number", "minimum": 0},
                    "time_to_reinterleave": {"type": ["number", "null"], "minimum": 0},
                    "goodput_lost_bits": {"type": "number", "minimum": 0},
                    "interleavable": {"type": "boolean"},
                    "reinterleaved": {"type": "boolean"},
                    "policy": {"type": ["string", "null"]},
                    "substrate": {"type": ["string", "null"]},
                    "campaign": {"type": ["integer", "null"], "minimum": 0},
                    "params": {"type": ["object", "null"]},
                },
            },
        },
        # Added in schema_version 5, also optional: bounded-model-checking
        # verdicts from ``repro verify`` (docs/VERIFICATION.md).  ``reason``
        # carries timeout/skip detail for inconclusive verdicts.
        "verification": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["property", "version", "verdict", "backend"],
                "properties": {
                    "property": {"type": "string"},
                    "version": {"type": "integer", "minimum": 1},
                    "verdict": {"enum": list(VERIFICATION_VERDICTS)},
                    "backend": {"type": "string"},
                    "states_checked": {"type": "integer", "minimum": 0},
                    "elapsed_s": {"type": "number", "minimum": 0},
                    "params": {"type": ["object", "null"]},
                    "reason": {"type": ["string", "null"]},
                },
            },
        },
        # Added in schema_version 6, also optional: periodic churn-daemon
        # snapshots (docs/SERVICE.md).  Counters are cumulative; ``events``
        # carries every admission/shedding/recovery decision since the
        # previous snapshot; ``jobs`` is null under coarse telemetry.
        "service": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "epoch",
                    "time",
                    "running",
                    "queue_depth",
                    "admitted",
                    "deferred",
                    "shed",
                    "degraded",
                    "departed",
                    "recoveries",
                ],
                "properties": {
                    "epoch": {"type": "integer", "minimum": 0},
                    "time": {"type": "number", "minimum": 0},
                    "running": {"type": "integer", "minimum": 0},
                    "queue_depth": {"type": "integer", "minimum": 0},
                    "admitted": {"type": "integer", "minimum": 0},
                    "deferred": {"type": "integer", "minimum": 0},
                    "shed": {"type": "integer", "minimum": 0},
                    "degraded": {"type": "integer", "minimum": 0},
                    "departed": {"type": "integer", "minimum": 0},
                    "recoveries": {"type": "integer", "minimum": 0},
                    "slo_attainment": {
                        "type": ["number", "null"],
                        "minimum": 0,
                    },
                    "coarse": {"type": "boolean"},
                    "events": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["kind", "detail"],
                            "properties": {
                                "kind": {"enum": list(SERVICE_EVENT_KINDS)},
                                "detail": {"type": "string"},
                                "job": {"type": ["string", "null"]},
                                "time": {"type": ["number", "null"]},
                            },
                        },
                    },
                    "jobs": {
                        "type": ["array", "null"],
                        "items": {
                            "type": "object",
                            "required": ["name", "iterations"],
                            "properties": {
                                "name": {"type": "string"},
                                "iterations": {"type": "integer", "minimum": 0},
                                "mean_iteration_s": {
                                    "type": ["number", "null"],
                                    "minimum": 0,
                                },
                                "slo_ok": {"type": ["boolean", "null"]},
                            },
                        },
                    },
                },
            },
        },
        # Added in schema_version 3, also not in ``required`` so v1/v2
        # reports keep validating: runtime-guardrail events, partitioned by
        # kind (docs/ROBUSTNESS.md).
        "guards": {
            "type": "object",
            "required": ["violations", "degradations", "watchdog_fires"],
            "properties": {
                "violations": {"items": _GUARD_EVENT_SCHEMA, "type": "array"},
                "degradations": {"items": _GUARD_EVENT_SCHEMA, "type": "array"},
                "watchdog_fires": {"items": _GUARD_EVENT_SCHEMA, "type": "array"},
            },
        },
    },
}


def validate_run_report(report: object, schema: Optional[dict] = None) -> list[str]:
    """Check a run-report against the schema; returns human-readable errors.

    Implements the JSON-Schema subset the run-report contract actually uses
    (``type`` — scalar or union list —, ``required``, ``properties``,
    ``items``, ``enum``, ``minimum``) so validation needs no third-party
    dependency.  An empty list means the report conforms.  Used by
    ``python -m repro validate-report`` and ``make bench-smoke``.
    """
    if schema is None:
        schema = RUN_REPORT_SCHEMA
    errors: list[str] = []
    _validate_node(report, schema, "$", errors)
    return errors


def _validate_node(value: object, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_matches_type(value, t) for t in types):
            errors.append(
                f"{path}: expected type {'/'.join(types)}, got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} is not one of {schema['enum']!r}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub_schema in schema.get("properties", {}).items():
            if key in value:
                _validate_node(value[key], sub_schema, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate_node(item, schema["items"], f"{path}[{i}]", errors)
    if (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and "minimum" in schema
        and value < schema["minimum"]
    ):
        errors.append(f"{path}: {value!r} is below the minimum {schema['minimum']!r}")


def _matches_type(value: object, type_name: str) -> bool:
    if type_name == "object":
        return isinstance(value, dict)
    if type_name == "array":
        return isinstance(value, list)
    if type_name == "string":
        return isinstance(value, str)
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "boolean":
        return isinstance(value, bool)
    if type_name == "null":
        return value is None
    return False

"""One callable per paper figure/claim — the reproduction's backbone.

Each ``fig*`` function runs the corresponding experiment end to end and
returns a small result object the benchmarks print and the integration
tests assert on.  Parameters default to paper scale but can be shrunk for
quick runs.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.schedule import FaultSchedule
    from ..guards.core import GuardRail

from ..core.aggressiveness import (
    AggressivenessFunction,
    LinearAggressiveness,
    paper_functions,
)
from ..core.analysis import convergence_error_std, gradient_descent, loss_curve, signed_shift
from ..faults.chaos import ChaosBudget, ChaosCampaign
from ..fluid.allocation import FairShare, MLTCPWeighted, SRPT
from ..fluid.flowsim import FluidResult, IterationResult, run_fluid
from ..metrics.convergence import detect_convergence
from ..metrics.recovery import RecoverySLO, recovery_slos
from ..metrics.stats import empirical_cdf, percentile, tail_speedup
from ..schedulers.centralized import CentralizedScheduler, Schedule
from ..tcp.mltcp import MLTCPReno
from ..tcp.reno import RenoCC
from ..metrics.contention import LinkContention, link_contention_report
from ..workloads.job import JobSpec
from ..workloads.placement import FabricSpec, JobPlacement, place_jobs
from ..workloads.presets import (
    BOTTLENECK_GBPS,
    cross_rack_scenario,
    four_job_scenario,
    six_job_scenario,
    three_job_scenario,
)
from ..workloads.traffic import DOUBLE_HUMP, SQUARE, demand_trace
from .packetlab import mltcp_config_for, run_packet_jobs, run_packet_placements

__all__ = [
    "fig1_traffic_patterns",
    "Fig2Result",
    "fig2_schedules",
    "fig3_aggressiveness",
    "Fig4Result",
    "fig4_six_jobs",
    "fig5_loss_function",
    "Fig6Result",
    "fig6_packet_two_jobs",
    "noise_error_bound",
    "fairness_loss_response",
    "fairness_competition_share",
    "FaultRecoveryResult",
    "fault_recovery",
    "CrossRackResult",
    "cross_rack_interleaving",
    "ChaosResult",
    "chaos_recovery",
]


# ---------------------------------------------------------------------------
# Figure 1: traffic patterns of the four jobs
# ---------------------------------------------------------------------------

def fig1_traffic_patterns(
    duration: float = 5.0, dt: float = 0.01
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Offered-load traces for J1 (GPT-3) and J2–J4 (GPT-2), Figure 1.

    The GPT-3-like job has a long single-plateau collective; the GPT-2-like
    jobs show the double-hump the paper's traces exhibit.
    """
    traces: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for job in four_job_scenario(jitter_sigma=0.0):
        shape = SQUARE if job.name == "J1" else DOUBLE_HUMP
        traces[job.name] = demand_trace(job, duration, dt=dt, shape=shape)
    return traces


# ---------------------------------------------------------------------------
# Figure 2: centralized vs SRPT vs MLTCP on the four-job mix
# ---------------------------------------------------------------------------

@dataclass
class Fig2Result:
    """Everything Figure 2 (and §2's approximation-error claim) reports."""

    schedule: Schedule
    optimal_times: dict[str, float]
    srpt_times: dict[str, float]
    mltcp_times: dict[str, float]
    mltcp_converged_at: Optional[int]
    mltcp_gap_vs_optimal: float
    srpt_result: FluidResult = field(repr=False)
    mltcp_result: FluidResult = field(repr=False)

    @property
    def srpt_j1_slowdown(self) -> float:
        """J1's slowdown under SRPT relative to the optimal schedule."""
        return self.srpt_times["J1"] / self.optimal_times["J1"]


def fig2_schedules(
    iterations: int = 60,
    capacity_gbps: float = BOTTLENECK_GBPS,
    seed: int = 5,
    early_window: int = 10,
) -> Fig2Result:
    """Reproduce Figure 2: optimal (Cassini-like), SRPT (pFabric), MLTCP.

    * optimal: centralized offset optimization, zero contention expected;
    * SRPT: all four jobs start together; averages over the *early* window
      (the paper's Figure 2(b) shows the first iterations, before fluid-
      level jitter slowly drifts SRPT's schedule apart);
    * MLTCP: same synchronized start, converges to the optimal interleave.
    """
    jobs = four_job_scenario()
    scheduler = CentralizedScheduler([j.with_jitter(0.0) for j in jobs], capacity_gbps)
    schedule = scheduler.optimize()
    optimal_times = scheduler.iteration_times_if_scheduled(schedule)

    srpt_result = run_fluid(
        jobs, capacity_gbps, policy=SRPT(), max_iterations=iterations, seed=seed
    )
    srpt_times = {
        j.name: float(srpt_result.iteration_times(j.name)[:early_window].mean())
        for j in jobs
    }

    mltcp_result = run_fluid(
        jobs, capacity_gbps, policy=MLTCPWeighted(), max_iterations=iterations, seed=seed
    )
    mltcp_times = {
        j.name: float(mltcp_result.iteration_times(j.name)[-early_window:].mean())
        for j in jobs
    }

    # Convergence of the average iteration time toward the optimal average.
    rounds = mltcp_result.mean_iteration_by_round()
    target = float(np.mean(list(optimal_times.values())))
    report = detect_convergence(rounds, target=target, tolerance=0.05)
    gap = abs(float(np.mean(list(mltcp_times.values()))) - target) / target
    return Fig2Result(
        schedule=schedule,
        optimal_times=optimal_times,
        srpt_times=srpt_times,
        mltcp_times=mltcp_times,
        mltcp_converged_at=report.converged_at,
        mltcp_gap_vs_optimal=gap,
        srpt_result=srpt_result,
        mltcp_result=mltcp_result,
    )


# ---------------------------------------------------------------------------
# Figure 3: aggressiveness-function comparison
# ---------------------------------------------------------------------------

def fig3_aggressiveness(
    iterations: int = 40,
    capacity_gbps: float = BOTTLENECK_GBPS,
    seed: int = 11,
    functions: Optional[dict[str, AggressivenessFunction]] = None,
) -> dict[str, np.ndarray]:
    """Average iteration time per round for each F1…F6 (Figure 3).

    Three identical GPT-2 jobs start synchronized; increasing functions
    interleave (series decreases to the ideal), decreasing ones do not.
    """
    if functions is None:
        functions = paper_functions()
    jobs = three_job_scenario()
    series: dict[str, np.ndarray] = {}
    for name, function in functions.items():
        result = run_fluid(
            jobs,
            capacity_gbps,
            policy=MLTCPWeighted(function),
            max_iterations=iterations,
            seed=seed,
        )
        series[name] = result.mean_iteration_by_round(max_rounds=iterations)
    return series


# ---------------------------------------------------------------------------
# Figure 4: six jobs, Reno vs MLTCP-Reno, CDF of iteration times
# ---------------------------------------------------------------------------

@dataclass
class Fig4Result:
    """Figure 4's three panels in data form."""

    reno_result: FluidResult = field(repr=False)
    mltcp_result: FluidResult = field(repr=False)
    reno_times: np.ndarray = field(repr=False)
    mltcp_times: np.ndarray = field(repr=False)
    tail_speedup_p99: float = 0.0
    median_speedup: float = 0.0

    def cdfs(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Empirical CDFs of both policies' iteration times (panel c)."""
        return {
            "reno": empirical_cdf(self.reno_times),
            "mltcp": empirical_cdf(self.mltcp_times),
        }


def fig4_six_jobs(
    iterations: int = 400,
    capacity_gbps: float = BOTTLENECK_GBPS,
    seed: int = 5,
) -> Fig4Result:
    """Reproduce Figure 4: six GPT-2 jobs under fair share vs MLTCP.

    Iteration times are pooled over the whole lifetime of the jobs (as the
    paper's CDF is), so the lifetime must be long enough that MLTCP's brief
    convergence transient does not own the tail percentile — 400 iterations
    keeps it under 1%.  Reno stays congested throughout, giving the ~1.5x
    p99 speedup (paper: 1.59x).
    """
    jobs = six_job_scenario()
    reno_result = run_fluid(
        jobs, capacity_gbps, policy=FairShare(), max_iterations=iterations, seed=seed
    )
    mltcp_result = run_fluid(
        jobs, capacity_gbps, policy=MLTCPWeighted(), max_iterations=iterations, seed=seed
    )
    reno_times = reno_result.all_iteration_times()
    mltcp_times = mltcp_result.all_iteration_times()
    return Fig4Result(
        reno_result=reno_result,
        mltcp_result=mltcp_result,
        reno_times=reno_times,
        mltcp_times=mltcp_times,
        tail_speedup_p99=tail_speedup(reno_times, mltcp_times, q=99),
        median_speedup=percentile(reno_times, 50) / percentile(mltcp_times, 50),
    )


# ---------------------------------------------------------------------------
# Figure 5(c): the loss function
# ---------------------------------------------------------------------------

def fig5_loss_function(
    alpha: float = 0.5,
    period: float = 1.8,
    samples: int = 361,
) -> dict[str, np.ndarray]:
    """Loss (Eq. 4) and shift (Eq. 3) curves over one period, Figure 5(c)."""
    deltas, losses = loss_curve(alpha, period, samples=samples)
    shifts = np.array([signed_shift(d, alpha, period) for d in deltas])
    return {"delta": deltas, "loss": losses, "shift": shifts}


# ---------------------------------------------------------------------------
# Figure 6: packet-level MLTCP-Reno sliding of two jobs
# ---------------------------------------------------------------------------

@dataclass
class Fig6Result:
    """Packet-level two-job run: per-job series and throughput timelines."""

    iteration_times: dict[str, np.ndarray]
    throughput: dict[str, tuple[np.ndarray, np.ndarray]]
    ideal_iteration_time: float
    converged_at: Optional[int]
    final_mean: float


def fig6_packet_two_jobs(
    iterations: int = 40,
    mltcp: bool = True,
    seed: int = 2,
    jitter_sigma: float = 0.0005,
) -> Fig6Result:
    """Two identical alpha=1/2 jobs over the packet simulator (Figure 6).

    Scaled units (DESIGN.md §2): 1 Gbps bottleneck, 8 Mbit collectives,
    10 ms compute — preserving alpha = 1/2 and full-overlap contention.
    MLTCP-Reno slides the jobs into an interleaved schedule within a few
    tens of iterations.
    """
    job_template = JobSpec(
        name="Job",
        comm_bits=8e6,
        demand_gbps=1.0,
        compute_time=0.010,
        jitter_sigma=jitter_sigma,
    )
    jobs = [job_template.with_name("Job1"), job_template.with_name("Job2")]

    def factory(job: JobSpec):
        if mltcp:
            return MLTCPReno(mltcp_config_for(job))
        return RenoCC()

    lab = run_packet_jobs(jobs, factory, max_iterations=iterations, seed=seed)
    per_job = {job.name: lab.iteration_times(job.name) for job in jobs}
    rounds = lab.mean_iteration_by_round()
    # Ideal at packet level includes header overhead on the wire.
    overhead = 1500.0 / 1460.0
    ideal = job_template.ideal_comm_time * overhead + job_template.compute_time
    report = detect_convergence(rounds, target=ideal, tolerance=0.08)
    return Fig6Result(
        iteration_times=per_job,
        throughput={job.name: lab.throughput(job.name) for job in jobs},
        ideal_iteration_time=ideal,
        converged_at=report.converged_at,
        final_mean=report.final_mean,
    )


# ---------------------------------------------------------------------------
# §4: noise / approximation-error bound
# ---------------------------------------------------------------------------

def noise_error_bound(
    sigmas: Sequence[float] = (0.001, 0.002, 0.005, 0.01, 0.02),
    alpha: float = 0.5,
    period: float = 1.8,
    iterations: int = 4000,
    settle_fraction: float = 0.25,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Measured steady-state error std vs the 2*sigma*(1+I/S) bound (§4).

    Runs the two-job gradient descent with Gaussian iteration-time noise and
    measures the distance of the settled start-time difference from the
    interleaved point.
    """
    rows = []
    for sigma in sigmas:
        rng = np.random.default_rng(seed)
        trajectory = gradient_descent(
            delta0=0.1 * period,
            alpha=alpha,
            period=period,
            iterations=iterations,
            noise_sigma=sigma,
            rng=rng,
        )
        errors = trajectory.steady_state_error(settle_fraction=settle_fraction)
        rows.append(
            {
                "sigma": float(sigma),
                "measured_std": float(errors.std()),
                "theory_bound": convergence_error_std(sigma),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# §5: fairness — throughput response to loss probability
# ---------------------------------------------------------------------------

def fairness_competition_share(
    loss_probs: Sequence[float] = (0.0, 0.001, 0.002),
    bottleneck_bps: float = 1e9,
    link_delay: float = 100e-6,
    horizon: float = 2.0,
    seeds: Sequence[int] = (1, 2, 3),
) -> list[dict[str, float]]:
    """§5 fairness: a saturated MLTCP-Reno flow vs a Reno flow, sharing a
    (possibly lossy) bottleneck.

    "Given the same packet loss probability, an MLTCP-Reno flow claims more
    bandwidth share than a standard Reno flow.  However, MLTCP-Reno flows
    would not starve the other legacy flows."  Each row competes the two
    flows for ``horizon`` seconds (averaged over ``seeds``) and reports
    their goodputs; the MLTCP flow is deep into its iteration
    (``bytes_ratio = 1``, so ``F = slope + intercept = 2``).
    """
    from ..core.config import MLTCPConfig as _Cfg
    from ..simulator.engine import Simulator as _Sim
    from ..simulator.queues import DropTailQueue as _Queue
    from ..simulator.topology import build_dumbbell as _dumbbell
    from ..tcp.base import TcpReceiver as _Rx, TcpSender as _Tx

    rows = []
    for p in loss_probs:
        mltcp_total, reno_total = 0.0, 0.0
        for seed in seeds:
            sim = _Sim()
            net = _dumbbell(
                sim,
                2,
                bottleneck_bps=bottleneck_bps,
                link_delay=link_delay,
                bottleneck_queue=_Queue(64),
                bottleneck_random_loss=p,
                loss_seed=seed,
            )
            # total_bytes=1 pins bytes_ratio at 1 (the saturated flow the
            # quote describes), which is not an estimate of the real volume:
            # degradation must stay out of the way.
            ccs = [
                MLTCPReno(
                    _Cfg(total_bytes=1, comp_time=1e9, degrade_on_unreliable=False)
                ),
                RenoCC(),
            ]
            senders = []
            for i, cc in enumerate(ccs):
                sender = _Tx(
                    sim, net.hosts[f"s{i}"], f"f{i}", f"r{i}", cc, min_rto=10e-3
                )
                _Rx(sim, net.hosts[f"r{i}"], f"f{i}", f"s{i}")
                sender.send_bytes(int(bottleneck_bps * horizon / 4))  # ample
                senders.append(sender)
            sim.run(until=horizon)
            mltcp_total += senders[0].snd_una * senders[0].mss_bytes
            reno_total += senders[1].snd_una * senders[1].mss_bytes
        scale = 8 / (horizon * len(seeds)) / 1e6
        rows.append(
            {
                "loss_prob": float(p),
                "mltcp_mbps": mltcp_total * scale,
                "reno_mbps": reno_total * scale,
                "share_ratio": mltcp_total / max(1.0, reno_total),
            }
        )
    return rows


def fairness_loss_response(
    loss_probs: Sequence[float] = (0.0005, 0.001, 0.002, 0.004),
    transfer_bytes: int = 20_000_000,
    bottleneck_bps: float = 1e9,
    link_delay: float = 300e-6,
    seed: int = 1,
) -> list[dict[str, float]]:
    """§5 substrate check: a lone Reno flow follows the Mathis 1/sqrt(p) law.

    The paper's fairness argument starts from "TCP's throughput is inversely
    proportional to the square root of loss probability" [Mathis et al.].
    Each row runs one long Reno transfer over a random-loss bottleneck with
    a deep buffer (so every loss is an isolated random drop, the Mathis
    model's regime) and reports the achieved throughput; doubling ``p``
    should cut throughput by roughly ``sqrt(2)``.
    """
    from ..simulator.engine import Simulator as _Sim
    from ..simulator.queues import DropTailQueue as _Queue
    from ..simulator.topology import build_dumbbell as _dumbbell
    from ..tcp.base import TcpReceiver as _Rx, TcpSender as _Tx

    rows = []
    for p in loss_probs:
        sim = _Sim()
        net = _dumbbell(
            sim,
            1,
            bottleneck_bps=bottleneck_bps,
            link_delay=link_delay,
            bottleneck_queue=_Queue(4000),
            bottleneck_random_loss=p,
            loss_seed=seed,
        )
        cc = RenoCC()
        sender = _Tx(sim, net.hosts["s0"], "f", "r0", cc, min_rto=10e-3, max_rto=2.0)
        _Rx(sim, net.hosts["r0"], "f", "s0")
        finish: dict[str, float] = {}
        sender.on_all_acked = lambda f=finish: f.setdefault("t", sim.now)
        sender.send_bytes(transfer_bytes)
        sim.run(until=120.0)
        elapsed = finish.get("t", sim.now)
        rows.append(
            {
                "loss_prob": float(p),
                "reno_mbps": transfer_bytes * 8 / elapsed / 1e6,
                "mathis_prediction_mbps": _mathis_mbps(p, link_delay),
            }
        )
    return rows


def _mathis_mbps(loss_prob: float, link_delay: float) -> float:
    """Mathis et al. throughput model: MSS/RTT * sqrt(3/2) / sqrt(p)."""
    rtt = 6.0 * link_delay  # three hops each way on the dumbbell
    mss_bits = 1460 * 8
    return mss_bits / rtt * math.sqrt(1.5 / loss_prob) / 1e6


# ---------------------------------------------------------------------------
# Robustness: recovery after injected faults (docs/FAULTS.md)
# ---------------------------------------------------------------------------

@dataclass
class FaultRecoveryResult:
    """How a policy rode out one fault class, in both substrates' terms.

    The disturbance metric is the per-round mean iteration time of the
    faulted run compared round-by-round against a fault-free control run
    with the same policy and seed — the comparison cancels the convergence
    transient and the jitter realization, so ``disturbed_rounds`` counts
    only rounds the fault actually perturbed.  ``reconverged_at`` is the
    first round after which every remaining round stays within tolerance
    (0 when the fault never pushed the system out).
    """

    policy: str
    fault: str
    substrate: str
    target: float
    tolerance: float
    disturbed_rounds: int
    reconverged_at: int
    recovered: bool
    final_mean: float
    fault_log: list[str] = field(repr=False, default_factory=list)
    series: np.ndarray = field(repr=False, default_factory=lambda: np.array([]))
    baseline_series: np.ndarray = field(repr=False, default_factory=lambda: np.array([]))
    #: MLTCP degradation episodes observed during the *faulted* run
    #: (``{"flow", "reason", "start", "end"}``; packet substrate only —
    #: fluid policies carry no per-flow tracker).  See docs/ROBUSTNESS.md.
    degradation_episodes: list[dict] = field(repr=False, default_factory=list)


def _fault_schedule_for(
    fault: str, unit: float, job: str, seed: int
) -> "FaultSchedule":
    """A one-event schedule of class ``fault``, sized in units of one
    healthy iteration (strike after 25 iterations, last for 5)."""
    from ..faults.schedule import FaultEvent, FaultSchedule

    t0, dur = 25.0 * unit, 5.0 * unit
    if fault == "link_down":
        event = FaultEvent("link_down", time=t0, duration=dur)
    elif fault == "bandwidth":
        event = FaultEvent("bandwidth", time=t0, duration=dur, factor=0.5)
    elif fault == "loss_burst":
        event = FaultEvent("loss_burst", time=t0, duration=dur, loss=0.05)
    elif fault == "ecn_storm":
        event = FaultEvent("ecn_storm", time=t0, duration=dur)
    elif fault == "straggler":
        event = FaultEvent("straggler", time=t0, duration=dur, job=job, factor=2.0)
    elif fault == "job_restart":
        event = FaultEvent("job_restart", time=t0, job=job, restart_delay=2.0 * unit)
    else:
        raise ValueError(
            f"unknown fault class {fault!r}; valid: ['bandwidth', 'ecn_storm', "
            "'job_restart', 'link_down', 'loss_burst', 'straggler']"
        )
    return FaultSchedule(events=(event,), seed=seed)


def fault_recovery(
    fault: str = "link_down",
    policy: str = "mltcp",
    substrate: str = "fluid",
    iterations: int = 80,
    seed: int = 5,
    tolerance: float = 0.10,
    capacity_gbps: float = BOTTLENECK_GBPS,
    schedule_json: Optional[str] = None,
    guards: Optional["GuardRail"] = None,
) -> FaultRecoveryResult:
    """Measure iterations-to-reconverge after one injected fault (§4's
    robustness claim, stress-tested).

    Runs the same job mix twice — once clean, once with a single fault of
    class ``fault`` striking after ~25 healthy iterations — and reports how
    many rounds the faulted run's per-round mean deviated from the control
    by more than ``tolerance``.  ``policy`` is ``"mltcp"``, ``"reno"`` /
    ``"fair"`` (fair share) or ``"dctcp"``; ``substrate`` picks the fluid
    flow-level model (three GPT-2 jobs) or the packet simulator (two jobs
    on a 1 Gbps dumbbell, Figure 6's scaled units).  ``schedule_json`` (a
    :meth:`~repro.faults.schedule.FaultSchedule.to_json` document) replaces
    the built-in single-event schedule with a custom one — event times are
    then absolute simulation seconds, link/job names must fit the chosen
    substrate's topology, and ``fault`` is just a label.  The paper's
    point: MLTCP's interleaving re-forms by itself after the disturbance —
    no controller, no coordination — so its disturbed-round count stays
    small and ``recovered`` comes back ``True``.

    ``guards`` threads a :class:`~repro.guards.core.GuardRail` through both
    the clean and the faulted run (invariant monitors + watchdogs,
    docs/ROBUSTNESS.md); violations accumulate on the rail and MLTCP
    degradation episodes from the faulted run are surfaced on the result.
    """
    if substrate == "fluid":
        return _fault_recovery_fluid(
            fault, policy, iterations, seed, tolerance, capacity_gbps,
            schedule_json, guards,
        )
    if substrate == "packet":
        return _fault_recovery_packet(
            fault, policy, iterations, seed, tolerance, schedule_json, guards
        )
    raise ValueError(
        f"unknown substrate {substrate!r}; valid: ['fluid', 'packet']"
    )


def _recovery_from_series(
    policy: str,
    fault: str,
    substrate: str,
    series: np.ndarray,
    baseline: np.ndarray,
    tolerance: float,
    fault_log: list[str],
) -> FaultRecoveryResult:
    rounds = min(len(series), len(baseline))
    if rounds == 0:
        raise RuntimeError(
            f"faulted {substrate} run completed no common rounds "
            f"(fault={fault!r}, policy={policy!r}); lengthen the run"
        )
    series, baseline = series[:rounds], baseline[:rounds]
    target = float(baseline[rounds // 2:].mean())
    within = np.abs(series - baseline) <= tolerance * target
    disturbed = np.flatnonzero(~within)
    reconverged_at = int(disturbed[-1]) + 1 if disturbed.size else 0
    tail = min(3, rounds)
    return FaultRecoveryResult(
        policy=policy,
        fault=fault,
        substrate=substrate,
        target=target,
        tolerance=tolerance,
        disturbed_rounds=int(disturbed.size),
        reconverged_at=reconverged_at,
        recovered=bool(within[-tail:].all()),
        final_mean=float(series[-tail:].mean()),
        fault_log=list(fault_log),
        series=series,
        baseline_series=baseline,
    )


def _fault_recovery_fluid(
    fault: str,
    policy: str,
    iterations: int,
    seed: int,
    tolerance: float,
    capacity_gbps: float,
    schedule_json: Optional[str] = None,
    guards: Optional["GuardRail"] = None,
) -> FaultRecoveryResult:
    from ..faults.schedule import FaultSchedule

    policies = {
        "mltcp": MLTCPWeighted,
        "reno": FairShare,  # fair share is the fluid limit of loss-based TCP
        "fair": FairShare,
        "dctcp": FairShare,  # ... and of DCTCP's ECN-driven fairness
    }
    if policy not in policies:
        raise ValueError(
            f"unknown policy {policy!r} for the fluid substrate; "
            f"valid: {sorted(policies)}"
        )
    jobs = three_job_scenario()
    clean = run_fluid(
        jobs, capacity_gbps, policy=policies[policy](),
        max_iterations=iterations, seed=seed, guards=guards,
    )
    baseline = clean.mean_iteration_by_round()
    unit = float(baseline[len(baseline) // 2:].mean())
    if schedule_json is not None:
        schedule = FaultSchedule.from_json(schedule_json)
    else:
        schedule = _fault_schedule_for(fault, unit, jobs[0].name, seed)
    faulted = run_fluid(
        jobs, capacity_gbps, policy=policies[policy](),
        max_iterations=iterations, seed=seed, faults=schedule, guards=guards,
    )
    return _recovery_from_series(
        policy, fault, "fluid",
        faulted.mean_iteration_by_round(), baseline, tolerance,
        faulted.fault_log,
    )


def _fault_recovery_packet(
    fault: str,
    policy: str,
    iterations: int,
    seed: int,
    tolerance: float,
    schedule_json: Optional[str] = None,
    guards: Optional["GuardRail"] = None,
) -> FaultRecoveryResult:
    from ..faults.schedule import FaultSchedule
    from ..tcp.dctcp import DctcpCC
    from ..tcp.mltcp import MLTCPDctcp

    job_template = JobSpec(
        name="Job",
        comm_bits=8e6,
        demand_gbps=1.0,
        compute_time=0.010,
        jitter_sigma=0.0005,
    )
    jobs = [job_template.with_name("Job1"), job_template.with_name("Job2")]

    def factory(job: JobSpec):
        if policy == "mltcp":
            return MLTCPReno(mltcp_config_for(job))
        if policy == "mltcp-dctcp":
            return MLTCPDctcp(mltcp_config_for(job))
        if policy in ("reno", "fair"):
            return RenoCC()
        if policy == "dctcp":
            return DctcpCC()
        raise ValueError(
            f"unknown policy {policy!r} for the packet substrate; valid: "
            "['dctcp', 'fair', 'mltcp', 'mltcp-dctcp', 'reno']"
        )

    clean = run_packet_jobs(
        jobs, factory, max_iterations=iterations, seed=seed, guards=guards
    )
    baseline = clean.mean_iteration_by_round()
    unit = float(baseline[len(baseline) // 2:].mean())
    if schedule_json is not None:
        schedule = FaultSchedule.from_json(schedule_json)
    else:
        schedule = _fault_schedule_for(fault, unit, jobs[0].name, seed)
    faulted = run_packet_jobs(
        jobs, factory, max_iterations=iterations, seed=seed, faults=schedule,
        guards=guards,
    )
    fault_log: list[str] = [event.describe() for event in schedule.sorted_events()]
    episodes: list[dict] = []
    for name in sorted(faulted.senders):
        mltcp = getattr(faulted.senders[name].cc, "mltcp", None)
        if mltcp is not None:
            episodes.extend(mltcp.degradation_episodes)
    result = _recovery_from_series(
        policy, fault, "packet",
        faulted.mean_iteration_by_round(), baseline, tolerance, fault_log,
    )
    result.degradation_episodes = episodes
    return result


# ---------------------------------------------------------------------------
# Cross-rack fabrics: MLTCP vs vanilla CC on a multi-bottleneck fat tree
# ---------------------------------------------------------------------------

@dataclass
class CrossRackResult:
    """MLTCP vs fair-share interleaving on one oversubscribed fabric.

    ``mltcp_series``/``fair_series`` are the per-round mean iteration
    times across all jobs; ``link_utilization`` maps policy name to the
    per-link mean utilization of its run; ``contention`` is the static
    per-uplink hyper-period analysis of the placement
    (:func:`repro.metrics.contention.link_contention_report`).
    """

    substrate: str
    spec: FabricSpec
    placement_policy: str
    placements: tuple[JobPlacement, ...]
    ideal_iteration_time: float
    mltcp_series: np.ndarray
    fair_series: np.ndarray
    link_utilization: dict[str, dict[str, float]]
    contention: list[LinkContention] = field(repr=False, default_factory=list)

    def final_mean(self, policy: str, window: int = 5) -> float:
        """Mean of the last ``window`` rounds under ``policy``."""
        series = {"mltcp": self.mltcp_series, "fair": self.fair_series}[policy]
        return float(series[-window:].mean())

    @property
    def speedup(self) -> float:
        """Converged fair-share iteration time over MLTCP's (>1: MLTCP wins)."""
        return self.final_mean("fair") / self.final_mean("mltcp")

    @property
    def cross_rack_flows(self) -> int:
        """How many placed flows actually cross rack uplinks."""
        return sum(1 for p in self.placements if p.cross_rack)


def cross_rack_interleaving(
    substrate: str = "fluid",
    n_racks: int = 4,
    hosts_per_rack: int = 4,
    n_spines: int = 2,
    oversubscription: float = 2.0,
    placement: str = "spread",
    n_jobs: Optional[int] = None,
    iterations: int = 40,
    seed: int = 2,
    ecmp_seed: int = 2,
    jitter_sigma: float = 0.0005,
) -> CrossRackResult:
    """MLTCP vs vanilla CC on a multi-rack oversubscribed fat tree.

    Places ``n_jobs`` identical jobs (default: one per host pair) on the
    fabric under ``placement`` (packed / spread / random) and runs the mix
    twice — MLTCP weights vs plain fair share — in the chosen substrate.
    Under ``"spread"`` every flow crosses two fabric links (rack uplink,
    spine downlink) whose competitor sets differ, so each congested link
    must develop the paper's sliding effect *independently*; vanilla CC
    stays synchronized and pays the contention every iteration.

    The defaults put 2 flows on each 1 Gbps uplink (ECMP seed 2 splits
    each rack's four cross-rack flows 2/2 over the spines) with a summed
    mean load of ~0.88 Gbps — compatible, so a perfect interleave exists,
    which is exactly the §4 regime.  Both runs share one base ``seed``;
    reruns are bit-reproducible.
    """
    spec = FabricSpec(
        n_racks=n_racks,
        hosts_per_rack=hosts_per_rack,
        n_spines=n_spines,
        oversubscription=oversubscription,
        ecmp_seed=ecmp_seed,
    )
    if n_jobs is None:
        n_jobs = spec.n_hosts // 2
    jobs = cross_rack_scenario(n_jobs, jitter_sigma=jitter_sigma)
    placements = place_jobs(jobs, spec, policy=placement, seed=seed)
    contention = link_contention_report(placements, spec)
    template = jobs[0]

    if substrate == "fluid":
        runs = _cross_rack_fluid(placements, spec, iterations, seed)
    elif substrate == "packet":
        runs = _cross_rack_packet(placements, spec, iterations, seed)
    else:
        raise ValueError(
            f"unknown substrate {substrate!r}; valid: ['fluid', 'packet']"
        )
    (mltcp_series, mltcp_util), (fair_series, fair_util) = runs
    return CrossRackResult(
        substrate=substrate,
        spec=spec,
        placement_policy=placement,
        placements=placements,
        ideal_iteration_time=template.ideal_iteration_time,
        mltcp_series=mltcp_series,
        fair_series=fair_series,
        link_utilization={"mltcp": mltcp_util, "fair": fair_util},
        contention=contention,
    )


def _cross_rack_fluid(
    placements: tuple[JobPlacement, ...],
    spec: FabricSpec,
    iterations: int,
    seed: int,
) -> list[tuple[np.ndarray, dict[str, float]]]:
    from ..fluid.fabric import FluidFabric
    from ..fluid.network import run_network_fluid

    fabric = FluidFabric.from_spec(spec)
    placed = fabric.place(placements)
    # The default fluid quantum (20 ms) is sized for paper-scale (second-
    # long) iterations; these jobs iterate every ~18 ms, so track the
    # sliding at ~1/10 iteration resolution instead.
    quantum = min(0.02, placements[0].job.ideal_iteration_time / 10.0)
    out: list[tuple[np.ndarray, dict[str, float]]] = []
    for mltcp in (True, False):
        result = run_network_fluid(
            placed,
            fabric.capacities_gbps,
            mltcp=mltcp,
            max_iterations=iterations,
            seed=seed,
            quantum=quantum,
        )
        out.append((result.mean_iteration_by_round(), result.link_utilization()))
    return out


def _cross_rack_packet(
    placements: tuple[JobPlacement, ...],
    spec: FabricSpec,
    iterations: int,
    seed: int,
) -> list[tuple[np.ndarray, dict[str, float]]]:
    from ..tcp.reno import RenoCC

    factories: list[object] = [
        lambda job: MLTCPReno(mltcp_config_for(job)),
        lambda job: RenoCC(),
    ]
    out: list[tuple[np.ndarray, dict[str, float]]] = []
    for factory in factories:
        lab = run_packet_placements(
            placements, spec, factory, max_iterations=iterations, seed=seed
        )
        out.append(
            (lab.mean_iteration_by_round(), lab.network.link_utilization())
        )
    return out


# ---------------------------------------------------------------------------
# Chaos campaigns: failure-aware rerouting + recovery SLOs on the fabric
# ---------------------------------------------------------------------------

@dataclass
class ChaosResult:
    """One seeded chaos campaign replayed under MLTCP and fair share.

    ``slos`` maps policy name to the per-fault :class:`RecoverySLO` tuple
    (same schedule for both policies, so the lists align fault-by-fault);
    ``violations`` maps policy to the guard reports of its faulted run,
    each annotated with ``fault_context`` — the latest fault transition at
    or before the violation, the degradation-correlation signal
    docs/ROBUSTNESS.md describes.  ``degradation_episodes`` are MLTCP's
    tracker-sanity fallbacks (packet substrate only), likewise annotated.
    """

    substrate: str
    spec: FabricSpec
    placement_policy: str
    placements: tuple[JobPlacement, ...]
    ideal_iteration_time: float
    campaign_index: int
    campaign_seed: int
    schedule: "FaultSchedule"
    slos: dict[str, tuple[RecoverySLO, ...]]
    violations: dict[str, list[dict]]
    degradation_episodes: list[dict] = field(repr=False, default_factory=list)
    fault_log: dict[str, list[str]] = field(repr=False, default_factory=dict)
    series: dict[str, np.ndarray] = field(repr=False, default_factory=dict)

    @property
    def fault_descriptions(self) -> list[str]:
        """Every scheduled fault, human-readable, in strike order."""
        return [event.describe() for event in self.schedule.sorted_events()]

    def reinterleaved(self, policy: str) -> bool:
        """Did ``policy`` re-reach the §4 condition after *every* fault?"""
        slos = self.slos[policy]
        return bool(slos) and all(slo.reinterleaved for slo in slos)

    def total_outage(self) -> float:
        """Summed seconds any placed pair had no surviving path."""
        some_policy = next(iter(self.slos))
        return float(sum(s.time_to_reroute for s in self.slos[some_policy]))

    def goodput_lost(self, policy: str) -> float:
        """Total goodput (bits) ``policy`` lost across this campaign."""
        return float(sum(s.goodput_lost_bits for s in self.slos[policy]))


def _fault_context(schedule: "FaultSchedule", time: float) -> Optional[str]:
    """The latest fault transition at or before ``time``, rendered like the
    injectors' logs — used to correlate guard reports with fault windows."""
    latest: Optional[str] = None
    latest_t = -math.inf
    for event in schedule.sorted_events():
        if latest_t <= event.time <= time:
            latest = f"t={event.time:g}s: {event.describe()}"
            latest_t = event.time
        if event.duration > 0 and latest_t <= event.end_time <= time:
            latest = (
                f"t={event.end_time:g}s: {event.kind} on {event.target} reverted"
            )
            latest_t = event.end_time
    return latest


def _mean_round_series(
    iterations: Sequence["IterationResult"], jobs: Sequence[str]
) -> np.ndarray:
    per_job = {
        name: sorted(
            (it for it in iterations if it.job == name), key=lambda it: it.index
        )
        for name in jobs
    }
    rounds = min((len(its) for its in per_job.values()), default=0)
    return np.array(
        [
            float(np.mean([per_job[name][i].duration for name in jobs]))
            for i in range(rounds)
        ]
    )


def _chaos_fluid_run(
    placements: tuple[JobPlacement, ...],
    spec: FabricSpec,
    policy: str,
    iterations: int,
    seed: int,
    schedule: Optional["FaultSchedule"],
    guards: Optional["GuardRail"],
) -> tuple[list["IterationResult"], list[str], list[dict]]:
    from ..fluid.fabric import FluidFabric, FluidFabricFaults
    from ..fluid.network import run_network_fluid

    fabric = FluidFabric.from_spec(spec)
    placed = fabric.place(placements)
    quantum = min(0.02, placements[0].job.ideal_iteration_time / 10.0)
    faults = FluidFabricFaults(spec, schedule) if schedule is not None else None
    result = run_network_fluid(
        placed,
        fabric.capacities_gbps,
        mltcp=(policy == "mltcp"),
        max_iterations=iterations,
        seed=seed,
        quantum=quantum,
        fabric_faults=faults,
        guards=guards,
    )
    return list(result.iterations), list(result.fault_log), []


def _chaos_packet_run(
    placements: tuple[JobPlacement, ...],
    spec: FabricSpec,
    policy: str,
    iterations: int,
    seed: int,
    schedule: Optional["FaultSchedule"],
    guards: Optional["GuardRail"],
) -> tuple[list["IterationResult"], list[str], list[dict]]:
    from ..tcp.reno import RenoCC

    def factory(job: JobSpec):
        if policy == "mltcp":
            return MLTCPReno(mltcp_config_for(job))
        return RenoCC()

    lab = run_packet_placements(
        placements,
        spec,
        factory,
        max_iterations=iterations,
        seed=seed,
        faults=schedule,
        guards=guards,
    )
    iters = [
        IterationResult(
            job=name,
            index=it.index,
            comm_start=it.comm_start,
            comm_end=it.comm_end,
            iteration_end=it.iteration_end,
        )
        for name in sorted(lab.apps)
        for it in lab.apps[name].iterations
    ]
    fault_log = (
        []
        if schedule is None
        else [event.describe() for event in schedule.sorted_events()]
    )
    episodes: list[dict] = []
    for name in sorted(lab.senders):
        mltcp = getattr(lab.senders[name].cc, "mltcp", None)
        if mltcp is not None:
            episodes.extend(mltcp.degradation_episodes)
    return iters, fault_log, episodes


def chaos_recovery(
    substrate: str = "fluid",
    campaigns: int = 1,
    seed: int = 2,
    ecmp_seed: int = 2,
    n_racks: int = 4,
    hosts_per_rack: int = 4,
    n_spines: int = 2,
    oversubscription: float = 2.0,
    placement: str = "spread",
    n_jobs: Optional[int] = None,
    iterations: int = 48,
    budget: Optional[ChaosBudget] = None,
    guard_policy: Optional[str] = "record",
    tolerance: float = 0.10,
    window: int = 3,
    jitter_sigma: float = 0.0005,
    reinterleave_reference: Optional[float] = None,
) -> list[ChaosResult]:
    """Run seeded chaos campaigns and measure recovery SLOs per fault.

    Samples ``campaigns`` fault schedules from ``budget`` (default: a
    spine/uplink/rehash mix striking after ~18 healthy iterations, MTBF
    ~6 and durations ~4 iterations, one fault at a time, never
    blackholing) on the same 2:1-oversubscribed fabric
    :func:`cross_rack_interleaving` uses, then replays each campaign under
    MLTCP and fair share in the chosen substrate — plus one fault-free
    control run per policy, shared across campaigns, as the goodput
    baseline.  Everything keys off ``seed``/``ecmp_seed``: reruns are
    bit-reproducible, and both substrates replay the identical schedules.

    Per fault and policy the result carries a :class:`RecoverySLO`
    (time-to-reroute, time-to-reinterleave against the §4 condition,
    goodput lost); ``guard_policy`` threads a
    :class:`~repro.guards.core.GuardRail` through every faulted run
    (``None`` disables), and its reports come back annotated with the
    fault transition they coincide with.  The paper's claim, sharpened:
    after every single-spine failure MLTCP re-reaches the interleavable
    condition by itself, while fair share never does — even fault-free,
    its converged iteration time sits ~30% above ideal.

    ``reinterleave_reference`` is the iteration time the §4 check is
    relative to.  The fluid default is the job's ideal iteration time
    (perfect interleave = zero contention stretch).  The packet substrate
    carries irreducible packetization overhead (~1.5x ideal even for a
    lone flow), so there the default is the tail mean of the MLTCP
    control run — the fabric's measured achievable floor, still
    policy-independent, so fair share cannot trivially satisfy it.
    """
    from ..guards.core import GuardRail

    if substrate == "fluid":
        runner = _chaos_fluid_run
    elif substrate == "packet":
        runner = _chaos_packet_run
    else:
        raise ValueError(
            f"unknown substrate {substrate!r}; valid: ['fluid', 'packet']"
        )
    if campaigns < 1:
        raise ValueError(f"campaigns must be positive, got {campaigns!r}")
    spec = FabricSpec(
        n_racks=n_racks,
        hosts_per_rack=hosts_per_rack,
        n_spines=n_spines,
        oversubscription=oversubscription,
        ecmp_seed=ecmp_seed,
    )
    if n_jobs is None:
        n_jobs = spec.n_hosts // 2
    jobs = cross_rack_scenario(n_jobs, jitter_sigma=jitter_sigma)
    placements = place_jobs(jobs, spec, policy=placement, seed=seed)
    job_names = [p.job.name for p in placements]
    ideal = jobs[0].ideal_iteration_time
    interleavable = all(
        entry.interleavable for entry in link_contention_report(placements, spec)
    )
    if budget is None:
        budget = ChaosBudget(
            horizon=12.0 * ideal,
            mtbf=6.0 * ideal,
            mean_duration=4.0 * ideal,
            start=18.0 * ideal,
            max_concurrent=1,
            min_events=1,
        )
    campaign = ChaosCampaign(
        spec=spec, budget=budget, seed=seed, n_campaigns=campaigns
    )

    controls = {
        policy: runner(placements, spec, policy, iterations, seed, None, None)[0]
        for policy in ("mltcp", "fair")
    }
    if reinterleave_reference is None:
        if substrate == "fluid":
            reinterleave_reference = ideal
        else:
            control_series = _mean_round_series(controls["mltcp"], job_names)
            tail = max(window, 5)
            reinterleave_reference = float(control_series[-tail:].mean())

    results: list[ChaosResult] = []
    for index in range(campaigns):
        schedule = campaign.schedule(index)
        slos: dict[str, tuple[RecoverySLO, ...]] = {}
        violations: dict[str, list[dict]] = {}
        fault_log: dict[str, list[str]] = {}
        series: dict[str, np.ndarray] = {}
        episodes: list[dict] = []
        for policy in ("mltcp", "fair"):
            rail = GuardRail(guard_policy) if guard_policy else None
            iters, log, eps = runner(
                placements, spec, policy, iterations, seed, schedule, rail
            )
            slos[policy] = recovery_slos(
                spec,
                schedule,
                placements,
                iters,
                controls[policy],
                ideal_iteration_time=reinterleave_reference,
                interleavable=interleavable,
                tolerance=tolerance,
                window=window,
            )
            violations[policy] = [
                {**v.as_dict(), "fault_context": _fault_context(schedule, v.time)}
                for v in (rail.violations if rail is not None else [])
            ]
            fault_log[policy] = log
            series[policy] = _mean_round_series(iters, job_names)
            if policy == "mltcp":
                episodes = [
                    {
                        **episode,
                        "fault_context": _fault_context(
                            schedule, float(episode.get("start", 0.0))
                        ),
                    }
                    for episode in eps
                ]
        results.append(
            ChaosResult(
                substrate=substrate,
                spec=spec,
                placement_policy=placement,
                placements=placements,
                ideal_iteration_time=ideal,
                campaign_index=index,
                campaign_seed=campaign.campaign_seed(index),
                schedule=schedule,
                slos=slos,
                violations=violations,
                degradation_episodes=episodes,
                fault_log=fault_log,
                series=series,
            )
        )
    return results

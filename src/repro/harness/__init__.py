"""Experiment harness: figure runners, packet lab, execution layer, reports.

The pipeline, end to end:

1. :mod:`~repro.harness.experiments` — one callable per paper figure/claim.
2. :mod:`~repro.harness.packetlab` — assembles packet-level runs (jobs on a
   dumbbell with per-job congestion control) for the figures that need them.
3. :mod:`~repro.harness.sweep` — crosses an experiment with seeds and a
   parameter grid (:func:`repeat_with_seeds` / :func:`sweep`).
4. :mod:`~repro.harness.runner` — executes the resulting points: optional
   process-pool parallelism (``workers=N``), content-addressed result
   caching (:mod:`~repro.harness.cache`), per-point instrumentation
   (:mod:`~repro.harness.telemetry`, emitted as a JSON run-report), and
   failure handling — per-point timeouts, retries with backoff, crash
   isolation (:class:`~repro.harness.runner.FailedPoint`) and checkpointed
   resume (:mod:`~repro.harness.checkpoint`).
5. :mod:`~repro.harness.report` — renders rows/series as terminal text.

docs/HARNESS.md is the operator-facing guide to steps 3–4; docs/FAULTS.md
covers the fault-injection and recovery experiments.
"""

from .experiments import (
    ChaosResult,
    FaultRecoveryResult,
    Fig2Result,
    Fig4Result,
    Fig6Result,
    chaos_recovery,
    fairness_loss_response,
    fault_recovery,
    fig1_traffic_patterns,
    fig2_schedules,
    fig3_aggressiveness,
    fig4_six_jobs,
    fig5_loss_function,
    fig6_packet_two_jobs,
    noise_error_bound,
)
from .packetlab import (
    PacketLabResult,
    mltcp_config_for,
    run_packet_jobs,
    throughput_timeline,
)
from .cache import ResultCache, default_cache_dir, point_key
from .checkpoint import RunCheckpoint
from .runner import ExperimentRunner, FailedPoint, PointTimeoutError
from .sweep import SeedSummary, repeat_with_seeds, sweep
from .telemetry import (
    DEGRADATION_KINDS,
    PointRecord,
    REPORT_SCHEMA_VERSION,
    RUN_REPORT_SCHEMA,
    RunTelemetry,
    validate_run_report,
)
from .report import format_seconds, render_series, render_table, sparkline

__all__ = [
    "fig1_traffic_patterns",
    "fig2_schedules",
    "Fig2Result",
    "fig3_aggressiveness",
    "fig4_six_jobs",
    "Fig4Result",
    "fig5_loss_function",
    "fig6_packet_two_jobs",
    "Fig6Result",
    "noise_error_bound",
    "fairness_loss_response",
    "fault_recovery",
    "FaultRecoveryResult",
    "chaos_recovery",
    "ChaosResult",
    "PacketLabResult",
    "run_packet_jobs",
    "mltcp_config_for",
    "throughput_timeline",
    "render_table",
    "render_series",
    "sparkline",
    "format_seconds",
    "SeedSummary",
    "repeat_with_seeds",
    "sweep",
    "ExperimentRunner",
    "FailedPoint",
    "PointTimeoutError",
    "RunCheckpoint",
    "ResultCache",
    "point_key",
    "default_cache_dir",
    "RunTelemetry",
    "PointRecord",
    "RUN_REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "DEGRADATION_KINDS",
    "validate_run_report",
]

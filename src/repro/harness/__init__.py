"""Experiment harness: per-figure runners, packet-level lab, text reports."""

from .experiments import (
    Fig2Result,
    Fig4Result,
    Fig6Result,
    fairness_loss_response,
    fig1_traffic_patterns,
    fig2_schedules,
    fig3_aggressiveness,
    fig4_six_jobs,
    fig5_loss_function,
    fig6_packet_two_jobs,
    noise_error_bound,
)
from .packetlab import (
    PacketLabResult,
    mltcp_config_for,
    run_packet_jobs,
    throughput_timeline,
)
from .sweep import SeedSummary, repeat_with_seeds, sweep
from .report import format_seconds, render_series, render_table, sparkline

__all__ = [
    "fig1_traffic_patterns",
    "fig2_schedules",
    "Fig2Result",
    "fig3_aggressiveness",
    "fig4_six_jobs",
    "Fig4Result",
    "fig5_loss_function",
    "fig6_packet_two_jobs",
    "Fig6Result",
    "noise_error_bound",
    "fairness_loss_response",
    "PacketLabResult",
    "run_packet_jobs",
    "mltcp_config_for",
    "throughput_timeline",
    "render_table",
    "render_series",
    "sparkline",
    "format_seconds",
    "SeedSummary",
    "repeat_with_seeds",
    "sweep",
]

"""Checkpointed sweeps: an append-only journal of completed points.

Role in the pipeline: the experiment runner (:mod:`repro.harness.runner`)
appends every *successfully* computed point result to a
:class:`RunCheckpoint` as it finishes; a later run handed the same
checkpoint file skips those points entirely (mode ``"resumed"`` in the
run-report) and recomputes only the points that failed, timed out, or were
never reached.  That is what ``--resume`` on the CLI's ``faults`` command
does — a sweep interrupted by a crash or a ⌃C loses only its in-flight
points.

The checkpoint differs from :class:`repro.harness.cache.ResultCache` in
scope and lifetime: the cache is a long-lived, content-addressed store
shared across experiments; a checkpoint belongs to *one* logical sweep and
is deleted (or simply not passed) to start fresh.  Keys are the same
:func:`~repro.harness.cache.point_key` digests, so a checkpointed point is
resumed bit-identically.

Format: JSON Lines, one ``{"key": <digest>, "blob": <base64 pickle>}``
object per line, flushed per point.  A truncated final line (the crash that
motivated the resume) is skipped on load; later entries for the same key
win, so re-running a point simply supersedes it.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path
from typing import Optional, Tuple

__all__ = ["RunCheckpoint"]


class RunCheckpoint:
    """Append-only journal of ``point_key -> result`` for one sweep."""

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = Path(path)
        self._entries: dict[str, object] = {}
        self.corrupt_lines = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                value = pickle.loads(base64.b64decode(record["blob"]))
                self._entries[record["key"]] = value
            except Exception:
                # A crash mid-append leaves at most one truncated line;
                # skipping it just means that point is recomputed.
                self.corrupt_lines += 1

    def get(self, key: str) -> Tuple[bool, object]:
        """Look up ``key``; returns ``(hit, value)``."""
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    def put(self, key: str, value: object) -> bool:
        """Journal one completed point; returns whether it was persisted.

        Unpicklable results are kept in memory for this run but cannot be
        resumed from disk later (same silent-skip contract as the cache).
        """
        self._entries[key] = value
        try:
            blob = base64.b64encode(pickle.dumps(value)).decode("ascii")
        except Exception:
            return False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(json.dumps({"key": key, "blob": blob}) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            return False
        return True

    def keys(self) -> tuple[str, ...]:
        """All journaled keys, sorted.  Sweep checkpoints use opaque point
        digests and never need this; ordered-key subclasses (the service's
        write-ahead journal) scan it for the latest committed epoch."""
        return tuple(sorted(self._entries))

    def clear(self) -> None:
        """Forget every journaled point and delete the file (fresh sweep)."""
        self._entries.clear()
        try:
            self.path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RunCheckpoint {self.path} ({len(self)} points)>"

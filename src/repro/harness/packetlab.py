"""Packet-level experiment assembly: jobs on a dumbbell, end to end.

Builds the paper's testbed shape around :mod:`repro.simulator` and
:mod:`repro.tcp`: one sender/receiver host pair per job across the
bottleneck, one TCP flow per job driven by a
:class:`~repro.simulator.app.TrainingApp`.

Scaled units: the paper's 50 Gbps / GB-scale iterations are mapped to
~1 Gbps links and MB-scale iterations so a Python discrete-event loop can
push enough packets; every ratio MLTCP depends on (bytes_ratio, comm/compute
fractions, demand/capacity) is preserved (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.schedule import FaultSchedule
    from ..guards.core import GuardRail

import numpy as np

from ..core.config import MLTCPConfig
from ..core.units import bps_from_gbps
from ..simulator.app import TrainingApp
from ..simulator.engine import Simulator
from ..simulator.queues import DropTailQueue
from ..simulator.topology import Network, build_dumbbell, build_fat_tree
from ..tcp.base import CongestionControl, TcpReceiver, TcpSender
from ..workloads.job import JobSpec
from ..workloads.placement import FabricSpec, JobPlacement

__all__ = [
    "PacketLabResult",
    "run_packet_jobs",
    "run_packet_placements",
    "mltcp_config_for",
    "throughput_timeline",
]

CcFactory = Callable[[JobSpec], CongestionControl]


def mltcp_config_for(
    job: JobSpec, comp_time_fraction: float = 0.3, **overrides
) -> MLTCPConfig:
    """An :class:`MLTCPConfig` matching a job's iteration shape.

    ``TOTAL_BYTES`` is the job's per-iteration volume; ``COMP_TIME`` (the
    ACK-gap threshold) defaults to a fraction of the computation phase —
    far above any RTT, far below the real gap, as §3.2 prescribes.
    """
    if not 0 < comp_time_fraction <= 1:
        raise ValueError(
            f"comp_time_fraction must be in (0, 1], got {comp_time_fraction!r}"
        )
    params = {
        "total_bytes": job.comm_bytes,
        "comp_time": max(1e-4, comp_time_fraction * job.compute_time),
    }
    params.update(overrides)
    return MLTCPConfig(**params)


@dataclass
class PacketLabResult:
    """Apps, senders and network of one packet-level run."""

    sim: Simulator
    network: Network
    jobs: tuple[JobSpec, ...]
    apps: dict[str, TrainingApp]
    senders: dict[str, TcpSender]
    receivers: dict[str, TcpReceiver] = field(default_factory=dict)

    def iteration_times(self, job: str) -> np.ndarray:
        """Durations (s) of the job's completed iterations."""
        return self.apps[job].iteration_times()

    def mean_iteration_by_round(self) -> np.ndarray:
        """Average duration of the i-th iteration across jobs."""
        per_job = [app.iteration_times() for app in self.apps.values()]
        rounds = min(len(t) for t in per_job)
        if rounds == 0:
            return np.array([])
        return np.array(
            [float(np.mean([t[i] for t in per_job])) for i in range(rounds)]
        )

    def all_iteration_times(self, skip: int = 0) -> np.ndarray:
        """Pooled iteration durations of every job (skipping warm-up)."""
        return np.concatenate(
            [app.iteration_times()[skip:] for app in self.apps.values()]
        )

    def throughput(self, job: str, dt: float = 0.005) -> tuple[np.ndarray, np.ndarray]:
        """Per-job goodput (Gbps) over time, from the sender's ACK log."""
        return throughput_timeline(
            self.senders[job].acked_bytes_log, self.sim.now, dt=dt
        )


def run_packet_jobs(
    jobs: Sequence[JobSpec],
    cc_factory: CcFactory,
    bottleneck_bps: float = 1e9,
    edge_bps: Optional[float] = None,
    queue_packets: int = 64,
    max_iterations: int = 40,
    until: Optional[float] = None,
    seed: int = 0,
    link_delay: float = 5e-6,
    faults: Optional["FaultSchedule"] = None,
    guards: Optional["GuardRail"] = None,
) -> PacketLabResult:
    """Run ``jobs`` over a dumbbell with per-job congestion control.

    ``cc_factory`` builds a fresh congestion-control instance per job —
    e.g. ``lambda job: MLTCPReno(mltcp_config_for(job))``.  ``faults``
    installs a :class:`~repro.faults.schedule.FaultSchedule` on the
    assembled testbed before the clock starts (docs/FAULTS.md); the
    default fault target is the dumbbell's ``sw_l->sw_r`` bottleneck.

    ``guards`` installs the runtime guardrail (docs/ROBUSTNESS.md): the
    engine's monitored event loop, periodic cwnd/link-conservation/tracker
    heartbeats against a BDP-derived cwnd cap, and degradation reporting
    from every MLTCP sender.  ``None`` (the default) changes nothing —
    the unmonitored hot path runs.
    """
    if not jobs:
        raise ValueError("need at least one job")
    sim = Simulator(monitor=guards)
    network = build_dumbbell(
        sim,
        n_pairs=len(jobs),
        bottleneck_bps=bottleneck_bps,
        edge_bps=edge_bps,
        link_delay=link_delay,
        bottleneck_queue=DropTailQueue(queue_packets),
    )
    rng = np.random.default_rng(seed)
    apps: dict[str, TrainingApp] = {}
    senders: dict[str, TcpSender] = {}
    receivers: dict[str, TcpReceiver] = {}
    for i, job in enumerate(jobs):
        sender_host, receiver_host = network.hosts[f"s{i}"], network.hosts[f"r{i}"]
        cc = cc_factory(job)
        sender = TcpSender(sim, sender_host, job.name, receiver_host.name, cc)
        receiver = TcpReceiver(sim, receiver_host, job.name, sender_host.name)
        sender.peer_rx = receiver
        app = TrainingApp(sim, sender, job, max_iterations=max_iterations, rng=rng)
        app.start()
        apps[job.name] = app
        senders[job.name] = sender
        receivers[job.name] = receiver

    if faults is not None:
        from ..faults.packet import install_packet_faults

        install_packet_faults(sim, network, faults, apps=apps)

    if guards is not None:
        from ..guards.watchdog import bdp_cwnd_cap, install_packet_guards
        from ..tcp.base import DEFAULT_MSS_BYTES

        for sender in senders.values():
            mltcp = getattr(sender.cc, "mltcp", None)
            if mltcp is not None:
                mltcp.attach_guardrail(guards)
        # Dumbbell RTT: three hops each way (edge, bottleneck, edge) plus
        # the worst-case bottleneck queueing delay — at these delays the
        # queue, not propagation, dominates the RTT a full buffer produces.
        queue_delay = queue_packets * 1500 * 8.0 / bottleneck_bps
        rtt = 6.0 * link_delay + queue_delay + 1e-4
        cap = bdp_cwnd_cap(bottleneck_bps, rtt, DEFAULT_MSS_BYTES, queue_packets)
        install_packet_guards(sim, network, senders, guards, max_cwnd=cap)

    if until is None:
        longest = max(job.ideal_iteration_time for job in jobs)
        until = 4.0 * longest * max_iterations
    sim.run(until=until)
    return PacketLabResult(
        sim=sim,
        network=network,
        jobs=tuple(jobs),
        apps=apps,
        senders=senders,
        receivers=receivers,
    )


def run_packet_placements(
    placements: Sequence[JobPlacement],
    spec: FabricSpec,
    cc_factory: CcFactory,
    max_iterations: int = 40,
    until: Optional[float] = None,
    seed: int = 0,
    link_delay: float = 5e-6,
    uplink_queue_capacity: int = 100,
    edge_queue_capacity: int = 256,
    faults: Optional["FaultSchedule"] = None,
    guards: Optional["GuardRail"] = None,
) -> PacketLabResult:
    """Run placed jobs over a multi-rack fat-tree fabric.

    The fabric-shaped sibling of :func:`run_packet_jobs`: builds
    ``spec``'s fat tree (:func:`~repro.simulator.topology.build_fat_tree`)
    and drives one TCP flow per placement from its source host to its
    destination host, so flows traverse the rack uplinks and spine
    downlinks the spec's deterministic ECMP rule assigns them — multiple
    bottlenecks with distinct competitor sets.  Per-link utilization is
    available afterwards via ``result.network.link_utilization()``.

    ``faults`` replays a :class:`~repro.faults.schedule.FaultSchedule` on
    the fabric, including fabric kinds (``spine_down`` etc.): the injector
    gets the spec, so failure-aware ECMP rerouting over the surviving
    spines is armed automatically.  ``guards`` installs the runtime
    guardrail (monitored engine loop, periodic heartbeats against the
    *uplink*-derived BDP cap, MLTCP degradation reporting, and — with
    faults — the route-liveness/reroute-conservation monitors after every
    fabric transition).
    """
    if not placements:
        raise ValueError("need at least one placed job")
    names = [p.job.name for p in placements]
    if len(set(names)) != len(names):
        raise ValueError(f"job names must be unique, got {names}")
    endpoints = [host for p in placements for host in (p.src, p.dst)]
    if len(set(endpoints)) != len(endpoints):
        raise ValueError(
            "placements must not share hosts (one flow endpoint per host), "
            f"got {endpoints}"
        )
    sim = Simulator(monitor=guards)
    network = build_fat_tree(
        sim,
        spec,
        link_delay=link_delay,
        uplink_queue_capacity=uplink_queue_capacity,
        edge_queue_capacity=edge_queue_capacity,
    )
    rng = np.random.default_rng(seed)
    apps: dict[str, TrainingApp] = {}
    senders: dict[str, TcpSender] = {}
    receivers: dict[str, TcpReceiver] = {}
    for placement in placements:
        job = placement.job
        src_host, dst_host = network.hosts[placement.src], network.hosts[placement.dst]
        cc = cc_factory(job)
        sender = TcpSender(sim, src_host, job.name, dst_host.name, cc)
        receiver = TcpReceiver(sim, dst_host, job.name, src_host.name)
        sender.peer_rx = receiver
        app = TrainingApp(sim, sender, job, max_iterations=max_iterations, rng=rng)
        app.start()
        apps[job.name] = app
        senders[job.name] = sender
        receivers[job.name] = receiver

    if faults is not None:
        from ..faults.packet import install_packet_faults

        install_packet_faults(
            sim, network, faults, apps=apps, fabric=spec, guards=guards
        )

    if guards is not None:
        from ..guards.watchdog import bdp_cwnd_cap, install_packet_guards
        from ..tcp.base import DEFAULT_MSS_BYTES

        for sender in senders.values():
            mltcp = getattr(sender.cc, "mltcp", None)
            if mltcp is not None:
                mltcp.attach_guardrail(guards)
        # Cross-rack RTT: four hops each way (edge, uplink, downlink, edge)
        # plus the worst-case uplink queueing delay — the oversubscribed
        # uplink is the congestion point, so its full buffer bounds the
        # queueing a window can see.
        uplink_bps = bps_from_gbps(spec.uplink_gbps)
        queue_delay = uplink_queue_capacity * 1500 * 8.0 / uplink_bps
        rtt = 8.0 * link_delay + queue_delay + 1e-4
        cap = bdp_cwnd_cap(
            uplink_bps, rtt, DEFAULT_MSS_BYTES, uplink_queue_capacity
        )
        install_packet_guards(sim, network, senders, guards, max_cwnd=cap)

    if until is None:
        longest = max(p.job.ideal_iteration_time for p in placements)
        until = 4.0 * longest * max_iterations
    sim.run(until=until)
    return PacketLabResult(
        sim=sim,
        network=network,
        jobs=tuple(p.job for p in placements),
        apps=apps,
        senders=senders,
        receivers=receivers,
    )


def throughput_timeline(
    acked_log: Sequence[tuple[float, int]], end_time: float, dt: float = 0.005
) -> tuple[np.ndarray, np.ndarray]:
    """Bin an (time, acked_bytes) log into a goodput series in Gbps."""
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt!r}")
    if end_time <= 0:
        raise ValueError(f"end_time must be positive, got {end_time!r}")
    bins = max(1, int(np.ceil(end_time / dt)))
    times = np.arange(bins) * dt
    series = np.zeros(bins)
    for t, nbytes in acked_log:
        index = min(bins - 1, int(t / dt))
        series[index] += nbytes * 8
    return times, series / dt / 1e9

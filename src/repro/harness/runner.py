"""Parallel, cached, instrumented, *self-healing* execution of experiment points.

Role in the pipeline: everything between "here is a list of experiment
points" and "here are their results" funnels through
:class:`ExperimentRunner.run_points`.  The seed/grid helpers in
:mod:`repro.harness.sweep` build their point lists and delegate here; the
benchmark suite (``benchmarks/_common.runner_from_env``) and the CLI
(``python -m repro run --workers N``) construct runners directly.

Features, all opt-in:

* **Parallelism** — ``workers=N`` fans cache-miss points out to a
  ``ProcessPoolExecutor``.  Each point is an independent seeded computation,
  so parallel results are bit-identical to sequential ones; the default
  stays sequential for determinism-sensitive callers and tiny sweeps.
  Completions are harvested with :func:`concurrent.futures.wait` as they
  arrive (not in submission order), so one slow point never starves the
  collection of the others.  An experiment callable that cannot be pickled
  (a lambda, a closure) falls back to sequential execution gracefully, with
  a note in the telemetry.
* **Caching** — a :class:`repro.harness.cache.ResultCache` keyed by
  experiment name + parameters + seed + package version turns re-runs of
  unchanged points into lookups.
* **Instrumentation** — a :class:`repro.harness.telemetry.RunTelemetry`
  records per-point wall time, simulator event counts and cache hit/miss,
  emitted as a structured JSON run-report.
* **Resilience** — ``timeout=`` bounds each point's wall clock;
  ``retries=`` re-runs a failed point with exponential backoff and
  deterministic jitter; ``isolate_failures=True`` converts a point that
  still fails — including one that kills its pool worker outright — into a
  :class:`FailedPoint` result instead of aborting the sweep;
  ``checkpoint=`` journals completed points so an interrupted sweep resumes
  where it left off.  Every timeout, retry and failure lands in the
  telemetry's ``degradations`` section.

The default (no timeout, no retries, ``isolate_failures=False``) preserves
the historical contract: the first experiment exception propagates to the
caller.  See docs/HARNESS.md for the operator-facing guide and
docs/FAULTS.md for the fault-injection side of the robustness story.
"""

from __future__ import annotations

import atexit
import pickle
import random
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from ..simulator.engine import total_events_processed
from .cache import ResultCache, point_key
from .checkpoint import RunCheckpoint
from .telemetry import RunTelemetry

__all__ = ["ExperimentRunner", "FailedPoint", "PointTimeoutError"]

#: Cap on a single retry backoff sleep, whatever the exponential says.
MAX_BACKOFF_S = 5.0


class PointTimeoutError(TimeoutError):
    """A point exceeded the runner's per-point ``timeout`` and
    ``isolate_failures`` was off, so the sweep aborts."""


@dataclass(frozen=True)
class FailedPoint:
    """Placeholder result for a point that could not be computed.

    Returned (positionally, in the point's slot) by
    :meth:`ExperimentRunner.run_points` when ``isolate_failures=True`` and
    the point exhausted its attempts.  ``kind`` classifies the terminal
    failure: ``"error"`` (the experiment raised), ``"crash"`` (the pool
    worker died — segfault, ``os._exit``, OOM-kill), or ``"timeout"`` (the
    per-point wall-clock budget ran out).  ``traceback`` carries the full
    formatted exception chain, including the remote traceback from a pool
    worker, so the failure is debuggable from the result object or the
    run-report alone.
    """

    params: dict
    kind: str
    error_type: str
    message: str
    traceback: str
    attempts: int

    def __bool__(self) -> bool:
        # ``[r for r in results if r]`` and ``filter(None, results)`` drop
        # failed slots naturally.
        return False

    def summary(self) -> str:
        """One human-readable line: what failed and how."""
        return (
            f"{self.kind} after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )


def _measured_call(experiment: Callable, kwargs: dict) -> tuple:
    """Run one point and measure it (top-level so worker processes can
    unpickle it).  Returns ``(value, wall_time_s, events_processed)``; the
    event delta is taken in the executing process, so pool workers report
    their own simulator work back to the parent."""
    start = time.perf_counter()
    events_before = total_events_processed()
    value = experiment(**kwargs)
    return (
        value,
        time.perf_counter() - start,
        total_events_processed() - events_before,
    )


def _is_picklable(obj: object) -> bool:
    """Whether ``obj`` survives a round-trip to a pool worker."""
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _format_error(error: BaseException) -> str:
    """The full traceback text, including any remote-worker cause chain."""
    return "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if a worker is hung or dead.

    ``shutdown(wait=True)`` alone would block forever on a hung worker and
    ``shutdown(wait=False)`` would leave it to block interpreter exit, so
    the workers are terminated first; joining dead processes is prompt.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # repro-lint: disable=GRD001 — process already gone
            pass
    pool.shutdown(wait=True, cancel_futures=True)


#: Reusable process pools, one per worker count.  Pool startup is the
#: dominant fixed cost of a small parallel sweep (fork + interpreter init
#: per worker), and ``repeat_with_seeds``/``sweep`` construct a fresh
#: runner per invocation — so healthy pools are cached at module level and
#: reused across ``run_points`` calls instead of being torn down each
#: time.  A pool that broke or stalled is retired (terminated and
#: dropped); the next run transparently starts a fresh one.  Isolated
#: re-runs keep their dedicated single-worker pools: blast-radius
#: containment beats reuse there.
_SHARED_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    """The reusable pool for this worker count, created on first use."""
    pool = _SHARED_POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _SHARED_POOLS[workers] = pool
    return pool


def _retire_shared_pool(pool: ProcessPoolExecutor) -> None:
    """Drop a broken/stalled pool from the cache and tear it down."""
    for workers, cached in list(_SHARED_POOLS.items()):
        if cached is pool:
            del _SHARED_POOLS[workers]
    _terminate_pool(pool)


def _shutdown_shared_pools() -> None:
    """Interpreter-exit cleanup for any still-cached pools."""
    while _SHARED_POOLS:
        _, pool = _SHARED_POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_shared_pools)


class ExperimentRunner:
    """Executes experiment points with optional workers, cache, telemetry,
    and failure handling.

    Parameters
    ----------
    name:
        Logical experiment name; becomes part of every cache key and the
        ``experiment`` field of the run-report.
    workers:
        Process-pool size for cache-miss points.  ``None`` or ``1`` keeps
        execution sequential and in-process (the deterministic default).
    cache:
        A :class:`~repro.harness.cache.ResultCache`, or ``None`` to always
        recompute.
    telemetry:
        A :class:`~repro.harness.telemetry.RunTelemetry` to append to; one
        is created internally when not given (always available as
        ``runner.telemetry``).
    timeout:
        Per-point wall-clock budget in seconds.  Enforcement is preemptive
        under a pool (the hung worker is terminated); in sequential mode a
        point cannot be interrupted, so an overrun is only *recorded* as a
        degradation after the fact.  Pool enforcement is best-effort for
        sweeps with more points than workers: the clock is re-armed on
        every completion, so a slow point is caught within ``timeout`` of
        the last other completion.
    retries:
        How many times to re-run a failed point before giving up.  Backoff
        between attempts is exponential (``retry_backoff_s * 2**(n-1)``)
        with deterministic jitter derived from the runner name and point
        index, capped at :data:`MAX_BACKOFF_S`.
    retry_backoff_s:
        Base backoff delay in seconds.
    isolate_failures:
        When ``True``, a point that exhausts its attempts yields a
        :class:`FailedPoint` in its result slot (and a ``degradations``
        entry) instead of raising; a worker crash or timeout only costs the
        points that were in flight, each of which is re-run in a fresh
        single-worker pool.  When ``False`` (default), the first terminal
        failure propagates, as it always did.  Crash/timeout isolation
        needs a pool (``workers >= 2``): in-process execution cannot
        survive a hard crash of itself.
    checkpoint:
        A :class:`~repro.harness.checkpoint.RunCheckpoint` journaling
        completed points.  Points already in the journal are served from it
        (mode ``"resumed"``) without touching cache or pool; successful new
        points are appended as they finish, so an interrupted or partially
        failed sweep re-runs only what is missing.
    """

    def __init__(
        self,
        name: str = "experiment",
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[RunTelemetry] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
        isolate_failures: bool = False,
        checkpoint: Optional[RunCheckpoint] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be a positive integer, got {workers!r}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout!r}")
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries!r}")
        if retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be non-negative, got {retry_backoff_s!r}"
            )
        self.name = name
        self.workers = workers
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else RunTelemetry(name)
        self.telemetry.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.isolate_failures = isolate_failures
        self.checkpoint = checkpoint

    def run_points(
        self,
        experiment: Callable[..., object],
        points: Sequence[Mapping[str, object]],
    ) -> list:
        """Run ``experiment(**point)`` for every point, in point order.

        Results are returned positionally (``results[i]`` belongs to
        ``points[i]``) regardless of which worker finished first, so callers
        can rely on the same ordering as a plain sequential loop.  With
        ``isolate_failures=True`` a slot may hold a :class:`FailedPoint`
        (falsy, so ``filter(None, results)`` keeps only successes);
        otherwise worker exceptions propagate unless they stem from the pool
        machinery itself, in which case the remaining points are re-run
        sequentially.
        """
        points = [dict(point) for point in points]
        results: list = [None] * len(points)
        done = [False] * len(points)
        # Per-point stats buffered and recorded in point order at the end,
        # so the run-report is deterministic even under a pool.
        stats: list[Optional[tuple]] = [None] * len(points)
        keys: list[Optional[str]] = [None] * len(points)
        pending: list[int] = []

        for i, params in enumerate(points):
            if self.cache is not None or self.checkpoint is not None:
                lookup_start = time.perf_counter()
                bare = {k: v for k, v in params.items() if k != "seed"}
                key = point_key(self.name, bare, seed=params.get("seed"))
                keys[i] = key
                if self.checkpoint is not None:
                    hit, value = self.checkpoint.get(key)
                    if hit:
                        results[i] = value
                        done[i] = True
                        stats[i] = (
                            time.perf_counter() - lookup_start, 0, False, "resumed",
                        )
                        continue
                if self.cache is not None:
                    hit, value = self.cache.get(key)
                    if hit:
                        results[i] = value
                        done[i] = True
                        stats[i] = (
                            time.perf_counter() - lookup_start, 0, True, "cached",
                        )
                        if self.checkpoint is not None and keys[i] is not None:
                            self.checkpoint.put(keys[i], value)
                        continue
            pending.append(i)

        if pending:
            self._execute(experiment, points, pending, results, done, stats, keys)

        for i, params in enumerate(points):
            wall, events, cache_hit, mode = stats[i]
            self.telemetry.record_point(
                params, wall, events, cache_hit=cache_hit, mode=mode
            )
        return results

    # -- internals --------------------------------------------------------

    def _execute(
        self,
        experiment: Callable,
        points: list[dict],
        pending: list[int],
        results: list,
        done: list[bool],
        stats: list,
        keys: list,
    ) -> None:
        """Compute the cache-miss points, in a pool when possible."""
        pool_capable = self.workers is not None and self.workers > 1
        # Crash isolation and preemptive timeouts only exist under a pool,
        # so when either is requested even a single point goes to a worker.
        want_pool = pool_capable and (
            len(pending) > 1
            or (len(pending) == 1 and (self.isolate_failures or self.timeout is not None))
        )
        if want_pool and not _is_picklable(experiment):
            self.telemetry.note(
                f"experiment {getattr(experiment, '__name__', experiment)!r} is "
                "not picklable; fell back to sequential execution"
            )
            want_pool = False

        if want_pool:
            try:
                self._run_pool(experiment, points, pending, results, done, stats, keys)
                return
            except (BrokenProcessPool, pickle.PicklingError, ImportError, AttributeError, TypeError) as error:
                # Pool infrastructure failed (worker died, callable or result
                # not transferable on this platform).  Re-running the missing
                # points sequentially either completes them or re-raises the
                # experiment's own error with a clean traceback.
                self.telemetry.note(
                    f"process pool failed ({type(error).__name__}: {error}); "
                    "re-ran remaining points sequentially"
                )

        for i in pending:
            if done[i]:
                continue
            self._run_sequential_point(experiment, points, i, results, done, stats, keys)

    def _run_pool(
        self,
        experiment: Callable,
        points: list[dict],
        pending: list[int],
        results: list,
        done: list[bool],
        stats: list,
        keys: list,
    ) -> None:
        """Fan pending points out to a pool, harvesting in completion order.

        Uses ``wait(..., FIRST_COMPLETED)`` (the primitive under
        ``as_completed``) re-armed with the per-point ``timeout`` so one
        slow or hung point cannot starve collection of the others — and so
        a stall longer than ``timeout`` is detected and handled.
        """
        attempts = {i: 1 for i in pending}
        pool = _shared_pool(self.workers)
        futures = {
            pool.submit(_measured_call, experiment, points[i]): i for i in pending
        }
        try:
            while futures:
                done_set, _ = wait(
                    set(futures), timeout=self.timeout, return_when=FIRST_COMPLETED
                )
                if not done_set:
                    self._handle_pool_stall(
                        pool, futures, experiment, points, attempts,
                        results, done, stats, keys,
                    )
                    return
                for future in done_set:
                    i = futures.pop(future)
                    try:
                        value, wall, events = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as error:
                        if attempts[i] <= self.retries:
                            self._record_retry(points[i], attempts[i], error)
                            self._backoff_sleep(i, attempts[i])
                            attempts[i] += 1
                            futures[
                                pool.submit(_measured_call, experiment, points[i])
                            ] = i
                        elif self.isolate_failures:
                            self._fail(
                                i, "error", error, attempts[i],
                                points, results, done, stats,
                            )
                        else:
                            raise
                    else:
                        self._finish(
                            i, value, wall, events, "worker",
                            results, done, stats, keys,
                        )
        except BrokenProcessPool:
            if not self.isolate_failures:
                _retire_shared_pool(pool)
                raise  # _execute re-runs the missing points sequentially
            # A worker died hard (segfault/os._exit/OOM), which poisons every
            # in-flight future of this pool.  Contain the blast radius: tear
            # the pool down and re-run each lost point in its own fresh
            # single-worker pool, where a repeat crash costs only itself.
            # (Derived from ``done``, not ``futures``: the future whose
            # result() raised was already popped.)
            leftover = sorted(i for i in attempts if not done[i])
            self.telemetry.record_degradation(
                "crash",
                f"process pool broke with {len(leftover)} point(s) in flight; "
                "re-running each in an isolated single-worker pool",
            )
            _retire_shared_pool(pool)
            for i in leftover:
                self._run_isolated_point(
                    experiment, points, i, attempts.get(i, 1),
                    results, done, stats, keys,
                )
        finally:
            # The pool outlives this call (it is reused by the next
            # run_points); cancel whatever this run still has queued so a
            # propagating experiment error doesn't leave orphan points
            # computing in the background.
            for future in futures:
                future.cancel()

    def _handle_pool_stall(
        self,
        pool: ProcessPoolExecutor,
        futures: dict,
        experiment: Callable,
        points: list[dict],
        attempts: dict,
        results: list,
        done: list[bool],
        stats: list,
        keys: list,
    ) -> None:
        """No completion within ``timeout``: the running points are hung.

        Queued-but-unstarted futures are cancellable and innocent; they are
        re-run afterwards in isolated pools with a fresh budget.  The
        uncancellable ones have been executing at least since the last
        completion, i.e. past their budget — they time out.
        """
        requeue: list[int] = []
        hung: list[int] = []
        for future, i in list(futures.items()):
            (requeue if future.cancel() else hung).append(i)
        self.telemetry.record_guard_event(
            "watchdog",
            f"pool stall watchdog: no completion within {self.timeout}s; "
            f"{len(hung)} hung point(s), {len(requeue)} requeued",
        )
        if not self.isolate_failures:
            _retire_shared_pool(pool)
            raise PointTimeoutError(
                f"{len(hung)} point(s) exceeded the per-point timeout of "
                f"{self.timeout}s (isolate_failures=False aborts the sweep); "
                f"first stuck params: {points[sorted(hung)[0]] if hung else '?'}"
            )
        for i in sorted(hung):
            error = PointTimeoutError(
                f"point exceeded per-point timeout of {self.timeout}s"
            )
            self._fail(
                i, "timeout", error, attempts.get(i, 1),
                points, results, done, stats,
            )
        _retire_shared_pool(pool)
        for i in sorted(requeue):
            self._run_isolated_point(
                experiment, points, i, attempts.get(i, 1),
                results, done, stats, keys,
            )

    def _run_isolated_point(
        self,
        experiment: Callable,
        points: list[dict],
        i: int,
        attempt: int,
        results: list,
        done: list[bool],
        stats: list,
        keys: list,
    ) -> None:
        """Run one point in a fresh single-worker pool (blast radius: itself).

        Only reached with ``isolate_failures=True``, after a shared pool
        broke or stalled.  Honors the per-point timeout and the remaining
        retry budget; a terminal failure becomes a :class:`FailedPoint`.
        """
        while True:
            pool = ProcessPoolExecutor(max_workers=1)
            future = pool.submit(_measured_call, experiment, points[i])
            kind: Optional[str] = None
            error: Optional[BaseException] = None
            try:
                value, wall, events = future.result(timeout=self.timeout)
            except FuturesTimeout:
                _terminate_pool(pool)
                kind, error = "timeout", PointTimeoutError(
                    f"point exceeded per-point timeout of {self.timeout}s"
                )
            except BrokenProcessPool as broken:
                _terminate_pool(pool)
                kind, error = "crash", broken
            except Exception as exc:
                pool.shutdown(wait=True)
                kind, error = "error", exc
            else:
                pool.shutdown(wait=True)
                self._finish(
                    i, value, wall, events, "worker", results, done, stats, keys
                )
                return
            if attempt <= self.retries:
                self._record_retry(points[i], attempt, error)
                self._backoff_sleep(i, attempt)
                attempt += 1
                continue
            self._fail(i, kind, error, attempt, points, results, done, stats)
            return

    def _run_sequential_point(
        self,
        experiment: Callable,
        points: list[dict],
        i: int,
        results: list,
        done: list[bool],
        stats: list,
        keys: list,
    ) -> None:
        attempt = 1
        while True:
            try:
                value, wall, events = _measured_call(experiment, points[i])
            except Exception as error:
                if attempt <= self.retries:
                    self._record_retry(points[i], attempt, error)
                    self._backoff_sleep(i, attempt)
                    attempt += 1
                    continue
                if self.isolate_failures:
                    self._fail(
                        i, "error", error, attempt, points, results, done, stats
                    )
                    return
                raise
            if self.timeout is not None and wall > self.timeout:
                # In-process execution cannot be preempted; record the
                # overrun so the report shows the budget was blown.
                self.telemetry.record_degradation(
                    "timeout",
                    f"point ran {wall:.2f}s, over the {self.timeout}s budget "
                    "(sequential mode cannot preempt; result kept)",
                    params=points[i],
                )
                self.telemetry.record_guard_event(
                    "watchdog",
                    f"wall-clock watchdog: point ran {wall:.2f}s, over the "
                    f"{self.timeout}s budget",
                    params=points[i],
                )
            self._finish(i, value, wall, events, "sequential", results, done, stats, keys)
            return

    def _record_retry(self, params: dict, attempt: int, error: BaseException) -> None:
        self.telemetry.record_degradation(
            "retry",
            f"attempt {attempt} failed ({type(error).__name__}: {error}); retrying",
            params=params,
            attempt=attempt,
        )

    def _backoff_sleep(self, index: int, attempt: int) -> None:
        """Exponential backoff with deterministic jitter before a retry."""
        if self.retry_backoff_s <= 0:
            return
        jitter = random.Random(f"{self.name}|{index}|{attempt}").random()
        delay = min(
            MAX_BACKOFF_S, self.retry_backoff_s * (2 ** (attempt - 1)) * (0.5 + jitter)
        )
        time.sleep(delay)

    def _fail(
        self,
        i: int,
        kind: str,
        error: BaseException,
        attempts: int,
        points: list[dict],
        results: list,
        done: list[bool],
        stats: list,
    ) -> None:
        """Record a terminal failure as a :class:`FailedPoint` result."""
        failed = FailedPoint(
            params=dict(points[i]),
            kind=kind,
            error_type=type(error).__name__,
            message=str(error),
            traceback=_format_error(error),
            attempts=attempts,
        )
        results[i] = failed
        done[i] = True
        stats[i] = (0.0, 0, False, "failed")
        self.telemetry.record_degradation(
            kind,
            f"point failed terminally after {attempts} attempt(s): "
            f"{failed.error_type}: {failed.message}",
            params=points[i],
            attempt=attempts,
        )

    def _finish(
        self,
        i: int,
        value: object,
        wall: float,
        events: int,
        mode: str,
        results: list,
        done: list[bool],
        stats: list,
        keys: list,
    ) -> None:
        results[i] = value
        done[i] = True
        stats[i] = (wall, events, False, mode)
        if self.cache is not None and keys[i] is not None:
            self.cache.put(keys[i], value)
        if self.checkpoint is not None and keys[i] is not None:
            self.checkpoint.put(keys[i], value)

"""Parallel, cached, instrumented execution of experiment points.

Role in the pipeline: everything between "here is a list of experiment
points" and "here are their results" funnels through
:class:`ExperimentRunner.run_points`.  The seed/grid helpers in
:mod:`repro.harness.sweep` build their point lists and delegate here; the
benchmark suite (``benchmarks/_common.runner_from_env``) and the CLI
(``python -m repro run --workers N``) construct runners directly.

Three orthogonal features, all opt-in:

* **Parallelism** — ``workers=N`` fans cache-miss points out to a
  ``ProcessPoolExecutor``.  Each point is an independent seeded computation,
  so parallel results are bit-identical to sequential ones; the default
  stays sequential for determinism-sensitive callers and tiny sweeps.
  An experiment callable that cannot be pickled (a lambda, a closure) falls
  back to sequential execution gracefully, with a note in the telemetry.
* **Caching** — a :class:`repro.harness.cache.ResultCache` keyed by
  experiment name + parameters + seed + package version turns re-runs of
  unchanged points into lookups.
* **Instrumentation** — a :class:`repro.harness.telemetry.RunTelemetry`
  records per-point wall time, simulator event counts and cache hit/miss,
  emitted as a structured JSON run-report.

See docs/HARNESS.md for the operator-facing guide.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Mapping, Optional, Sequence

from ..simulator.engine import total_events_processed
from .cache import ResultCache, point_key
from .telemetry import RunTelemetry

__all__ = ["ExperimentRunner"]


def _measured_call(experiment: Callable, kwargs: dict) -> tuple:
    """Run one point and measure it (top-level so worker processes can
    unpickle it).  Returns ``(value, wall_time_s, events_processed)``; the
    event delta is taken in the executing process, so pool workers report
    their own simulator work back to the parent."""
    start = time.perf_counter()
    events_before = total_events_processed()
    value = experiment(**kwargs)
    return (
        value,
        time.perf_counter() - start,
        total_events_processed() - events_before,
    )


def _is_picklable(obj: object) -> bool:
    """Whether ``obj`` survives a round-trip to a pool worker."""
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


class ExperimentRunner:
    """Executes experiment points with optional workers, cache, telemetry.

    Parameters
    ----------
    name:
        Logical experiment name; becomes part of every cache key and the
        ``experiment`` field of the run-report.
    workers:
        Process-pool size for cache-miss points.  ``None`` or ``1`` keeps
        execution sequential and in-process (the deterministic default).
    cache:
        A :class:`~repro.harness.cache.ResultCache`, or ``None`` to always
        recompute.
    telemetry:
        A :class:`~repro.harness.telemetry.RunTelemetry` to append to; one
        is created internally when not given (always available as
        ``runner.telemetry``).
    """

    def __init__(
        self,
        name: str = "experiment",
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[RunTelemetry] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be a positive integer, got {workers!r}")
        self.name = name
        self.workers = workers
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else RunTelemetry(name)
        self.telemetry.workers = workers

    def run_points(
        self,
        experiment: Callable[..., object],
        points: Sequence[Mapping[str, object]],
    ) -> list:
        """Run ``experiment(**point)`` for every point, in point order.

        Results are returned positionally (``results[i]`` belongs to
        ``points[i]``) regardless of which worker finished first, so callers
        can rely on the same ordering as a plain sequential loop.  Worker
        exceptions propagate unless they stem from the pool machinery
        itself, in which case the remaining points are re-run sequentially.
        """
        points = [dict(point) for point in points]
        results: list = [None] * len(points)
        done = [False] * len(points)
        # Per-point stats buffered and recorded in point order at the end,
        # so the run-report is deterministic even under a pool.
        stats: list[Optional[tuple]] = [None] * len(points)
        keys: list[Optional[str]] = [None] * len(points)
        pending: list[int] = []

        for i, params in enumerate(points):
            if self.cache is not None:
                lookup_start = time.perf_counter()
                bare = {k: v for k, v in params.items() if k != "seed"}
                key = point_key(self.name, bare, seed=params.get("seed"))
                keys[i] = key
                hit, value = self.cache.get(key)
                if hit:
                    results[i] = value
                    done[i] = True
                    stats[i] = (time.perf_counter() - lookup_start, 0, True, "cached")
                    continue
            pending.append(i)

        if pending:
            self._execute(experiment, points, pending, results, done, stats, keys)

        for i, params in enumerate(points):
            wall, events, cache_hit, mode = stats[i]
            self.telemetry.record_point(
                params, wall, events, cache_hit=cache_hit, mode=mode
            )
        return results

    # -- internals --------------------------------------------------------

    def _execute(
        self,
        experiment: Callable,
        points: list[dict],
        pending: list[int],
        results: list,
        done: list[bool],
        stats: list,
        keys: list,
    ) -> None:
        """Compute the cache-miss points, in a pool when possible."""
        want_pool = self.workers is not None and self.workers > 1 and len(pending) > 1
        if want_pool and not _is_picklable(experiment):
            self.telemetry.note(
                f"experiment {getattr(experiment, '__name__', experiment)!r} is "
                "not picklable; fell back to sequential execution"
            )
            want_pool = False

        if want_pool:
            try:
                self._run_pool(experiment, points, pending, results, done, stats, keys)
                return
            except (BrokenProcessPool, pickle.PicklingError, ImportError, AttributeError, TypeError) as error:
                # Pool infrastructure failed (worker died, callable or result
                # not transferable on this platform).  Re-running the missing
                # points sequentially either completes them or re-raises the
                # experiment's own error with a clean traceback.
                self.telemetry.note(
                    f"process pool failed ({type(error).__name__}: {error}); "
                    "re-ran remaining points sequentially"
                )

        for i in pending:
            if done[i]:
                continue
            value, wall, events = _measured_call(experiment, points[i])
            self._finish(i, value, wall, events, "sequential", results, done, stats, keys)

    def _run_pool(
        self,
        experiment: Callable,
        points: list[dict],
        pending: list[int],
        results: list,
        done: list[bool],
        stats: list,
        keys: list,
    ) -> None:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            try:
                futures = {
                    pool.submit(_measured_call, experiment, points[i]): i
                    for i in pending
                }
                for future, i in futures.items():
                    value, wall, events = future.result()
                    self._finish(i, value, wall, events, "worker", results, done, stats, keys)
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    def _finish(
        self,
        i: int,
        value: object,
        wall: float,
        events: int,
        mode: str,
        results: list,
        done: list[bool],
        stats: list,
        keys: list,
    ) -> None:
        results[i] = value
        done[i] = True
        stats[i] = (wall, events, False, mode)
        if self.cache is not None and keys[i] is not None:
            self.cache.put(keys[i], value)

"""Performance-baseline bookkeeping for the microbenchmark suite.

The fast-path work in docs/PERFORMANCE.md is only worth keeping if it stays
kept: this module turns pytest-benchmark output into small, committable
baseline files and compares runs against them, so ``repro bench-compare``
(and ``make bench-perf`` / ``make bench-perf-smoke``) can gate regressions
with the shared :mod:`repro.cliutil` exit-code contract.

Two on-disk formats are understood by :func:`load_report`:

* the **raw** JSON pytest-benchmark writes via ``--benchmark-json`` (a
  ``"benchmarks"`` *list*, one entry per test, with a ``"stats"`` block);
* the **compact** baseline format written by :func:`write_baseline` (a
  ``"benchmarks"`` *mapping* of test name to min/mean/rounds), which is what
  gets committed under ``bench_reports/`` — raw reports embed machine info
  and per-round samples that would churn every commit.

Comparison semantics: per benchmark, ``speedup = baseline_min /
current_min`` (>1 means the current tree is faster).  A benchmark regresses
when its minimum is more than ``threshold`` slower than baseline
(``current_min > baseline_min * (1 + threshold)``); minimums are compared —
not means — because the minimum is the least noisy location statistic a
benchmark has.  Benchmarks present in the baseline but absent from the
current report are also treated as violations: a silently vanished
benchmark must not pass the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

__all__ = [
    "DEFAULT_REGRESSION_THRESHOLD",
    "BenchStat",
    "ComparisonRow",
    "Comparison",
    "load_report",
    "write_baseline",
    "compare",
]

#: A benchmark may be up to this much slower than baseline before the gate
#: fails (ISSUE 4: "fails on >15% regressions").
DEFAULT_REGRESSION_THRESHOLD = 0.15


@dataclass(frozen=True)
class BenchStat:
    """One benchmark's summary statistics."""

    name: str
    min_seconds: float
    mean_seconds: float
    rounds: int

    def __post_init__(self) -> None:
        if self.min_seconds <= 0 or self.mean_seconds <= 0:
            raise ValueError(
                f"{self.name}: timings must be positive, got "
                f"min={self.min_seconds!r} mean={self.mean_seconds!r}"
            )
        if self.rounds < 1:
            raise ValueError(f"{self.name}: rounds must be positive, got {self.rounds!r}")


@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's current-vs-baseline verdict."""

    name: str
    baseline_min: float
    current_min: float
    threshold: float

    @property
    def speedup(self) -> float:
        """How much faster the current tree is (>1 is an improvement)."""
        return self.baseline_min / self.current_min

    @property
    def regressed(self) -> bool:
        """Whether the current minimum breaches the regression threshold."""
        return self.current_min > self.baseline_min * (1.0 + self.threshold)


@dataclass(frozen=True)
class Comparison:
    """Everything ``repro bench-compare`` needs to report and gate."""

    rows: tuple[ComparisonRow, ...]
    #: Benchmarks in the baseline with no counterpart in the current report.
    missing: tuple[str, ...]

    @property
    def regressions(self) -> tuple[ComparisonRow, ...]:
        """Rows that breached the threshold."""
        return tuple(row for row in self.rows if row.regressed)

    @property
    def ok(self) -> bool:
        """True when nothing regressed and nothing vanished."""
        return not self.regressions and not self.missing


def load_report(path: str | Path) -> dict[str, BenchStat]:
    """Benchmark stats from ``path``, raw pytest-benchmark or compact.

    Raises ``OSError`` when the file cannot be read and ``ValueError`` when
    it parses but matches neither format.
    """
    data = json.loads(Path(path).read_text())
    benchmarks = data.get("benchmarks") if isinstance(data, dict) else None
    stats: dict[str, BenchStat] = {}
    if isinstance(benchmarks, list):  # raw pytest-benchmark --benchmark-json
        for entry in benchmarks:
            name = entry["name"]
            block = entry["stats"]
            stats[name] = BenchStat(
                name=name,
                min_seconds=float(block["min"]),
                mean_seconds=float(block["mean"]),
                rounds=int(block["rounds"]),
            )
        return stats
    if isinstance(benchmarks, dict):  # compact committed baseline
        for name, block in benchmarks.items():
            stats[name] = BenchStat(
                name=name,
                min_seconds=float(block["min_seconds"]),
                mean_seconds=float(block["mean_seconds"]),
                rounds=int(block["rounds"]),
            )
        return stats
    raise ValueError(
        f"{path}: not a benchmark report (expected a 'benchmarks' list or mapping)"
    )


def write_baseline(
    path: str | Path,
    stats: Mapping[str, BenchStat],
    note: Optional[str] = None,
) -> Path:
    """Write ``stats`` as a compact committable baseline; returns the path."""
    if not stats:
        raise ValueError("refusing to write an empty baseline")
    payload: dict[str, Any] = {
        "schema": "repro-perf-baseline/1",
        "benchmarks": {
            name: {
                "min_seconds": stat.min_seconds,
                "mean_seconds": stat.mean_seconds,
                "rounds": stat.rounds,
            }
            for name, stat in sorted(stats.items())
        },
    }
    if note:
        payload["note"] = note
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


def compare(
    current: Mapping[str, BenchStat],
    baseline: Mapping[str, BenchStat],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> Comparison:
    """Compare ``current`` stats against ``baseline`` (see module docstring).

    Benchmarks only present in ``current`` are ignored — adding a benchmark
    must not fail the gate against an older baseline.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold!r}")
    rows = []
    missing = []
    for name, base in baseline.items():
        stat = current.get(name)
        if stat is None:
            missing.append(name)
            continue
        rows.append(
            ComparisonRow(
                name=name,
                baseline_min=base.min_seconds,
                current_min=stat.min_seconds,
                threshold=threshold,
            )
        )
    return Comparison(rows=tuple(rows), missing=tuple(missing))

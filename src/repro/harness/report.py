"""Plain-text rendering of experiment results (tables and series).

Final stage of the harness pipeline: benchmarks and examples print through
these helpers so every figure's regenerated rows/series look uniform in
terminal output and in the ``bench_reports/<name>.txt`` files the benchmark
suite writes (the machine-readable counterpart is the JSON run-report from
:mod:`repro.harness.telemetry`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "render_table",
    "render_series",
    "sparkline",
    "format_seconds",
    "render_guard_summary",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_seconds(value: float) -> str:
    """Human-scaled seconds (ms below 1 s)."""
    if value < 1.0:
        return f"{value * 1000:.1f} ms"
    return f"{value:.3f} s"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    if not headers:
        raise ValueError("need at least one header")
    string_rows = [[_cell(value) for value in row] for row in rows]
    for i, row in enumerate(string_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in string_rows)) if string_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str, values: Sequence[float], width: int = 60, unit: str = ""
) -> str:
    """One labelled sparkline row with min/max annotations."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return f"{name}: (empty)"
    suffix = f" {unit}" if unit else ""
    return (
        f"{name}: {sparkline(arr, width=width)}  "
        f"[min {arr.min():.3f}, max {arr.max():.3f}{suffix}]"
    )


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Unicode sparkline, resampled to ``width`` points."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Average-pool down to the target width.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges, edges[1:]) if b > a])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(s))] for s in scaled)


def render_guard_summary(guards: dict) -> str:
    """Human-readable summary of a run-report's v3 ``guards`` section.

    Accepts the dict under ``report["guards"]`` (see
    ``docs/run_report.schema.json``); tolerates missing arrays so partial
    or hand-built sections still render.  Used by ``python -m repro
    guards`` (docs/ROBUSTNESS.md).
    """
    violations = guards.get("violations", [])
    degradations = guards.get("degradations", [])
    watchdogs = guards.get("watchdog_fires", [])
    lines = [
        "guards: "
        f"{len(violations)} violation(s), "
        f"{len(degradations)} degradation episode(s), "
        f"{len(watchdogs)} watchdog fire(s)"
    ]
    for label, events in (
        ("violation", violations),
        ("degradation", degradations),
        ("watchdog", watchdogs),
    ):
        for event in events:
            guard = event.get("guard")
            subject = event.get("subject")
            time = event.get("time")
            prefix = f"  [{label}]"
            if guard:
                prefix += f" {guard}"
            if subject:
                prefix += f" {subject}"
            if time is not None:
                prefix += f" t={time:.6g}"
            lines.append(f"{prefix}: {event.get('detail', '')}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)

"""Multi-seed experiment repetition with summary statistics.

Single-seed simulation results can hinge on noise realizations (the §5
fairness experiments especially).  :func:`repeat_with_seeds` runs a
seed-parameterized experiment several times and reports mean, std and a
normal-approximation confidence interval; :func:`sweep` crosses that with a
parameter grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = ["SeedSummary", "repeat_with_seeds", "sweep"]

#: z-value for a 95% two-sided normal confidence interval.
_Z95 = 1.96


@dataclass(frozen=True)
class SeedSummary:
    """Aggregate of one scalar metric across seeds."""

    values: tuple[float, ...]
    mean: float
    std: float
    ci95_halfwidth: float

    @property
    def n(self) -> int:
        """Number of seeds aggregated."""
        return len(self.values)

    @property
    def ci95(self) -> tuple[float, float]:
        """95% confidence interval for the mean (normal approximation)."""
        return (self.mean - self.ci95_halfwidth, self.mean + self.ci95_halfwidth)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.ci95_halfwidth:.2g} (n={self.n})"


def repeat_with_seeds(
    experiment: Callable[[int], float], seeds: Sequence[int]
) -> SeedSummary:
    """Run ``experiment(seed)`` per seed and summarize the scalar results."""
    if not seeds:
        raise ValueError("need at least one seed")
    values = []
    for seed in seeds:
        value = float(experiment(seed))
        if math.isnan(value):
            raise ValueError(f"experiment returned NaN for seed {seed}")
        values.append(value)
    arr = np.array(values)
    std = float(arr.std(ddof=1)) if len(values) > 1 else 0.0
    halfwidth = _Z95 * std / math.sqrt(len(values)) if len(values) > 1 else 0.0
    return SeedSummary(
        values=tuple(values),
        mean=float(arr.mean()),
        std=std,
        ci95_halfwidth=halfwidth,
    )


def sweep(
    experiment: Callable[..., float],
    grid: Mapping[str, Sequence],
    seeds: Sequence[int],
) -> list[dict]:
    """Cross a parameter grid with seed repetition.

    ``experiment`` is called as ``experiment(seed=..., **point)`` for every
    point in the Cartesian product of ``grid``.  Returns one row per point:
    the parameter values plus a ``summary`` :class:`SeedSummary`.
    """
    if not grid:
        raise ValueError("grid must name at least one parameter")
    names = list(grid)
    rows: list[dict] = []

    def recurse(index: int, point: dict) -> None:
        if index == len(names):
            summary = repeat_with_seeds(
                lambda seed: experiment(seed=seed, **point), seeds
            )
            rows.append({**point, "summary": summary})
            return
        name = names[index]
        for value in grid[name]:
            recurse(index + 1, {**point, name: value})

    recurse(0, {})
    return rows

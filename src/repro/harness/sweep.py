"""Multi-seed experiment repetition with summary statistics.

Single-seed simulation results can hinge on noise realizations (the §5
fairness experiments especially).  :func:`repeat_with_seeds` runs a
seed-parameterized experiment several times and reports mean, std and a
normal-approximation confidence interval; :func:`sweep` crosses that with a
parameter grid.

Both delegate point execution to
:class:`repro.harness.runner.ExperimentRunner`, so they accept the same
opt-in ``workers`` (process-pool parallelism — results stay bit-identical
to the sequential path because every point is an independent seeded
computation), ``cache`` (skip unchanged points across runs) and
``telemetry`` (per-point wall time / event counts in a JSON run-report)
arguments.  All three default to off; see docs/HARNESS.md.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from .cache import ResultCache
from .runner import ExperimentRunner
from .telemetry import RunTelemetry

__all__ = ["SeedSummary", "repeat_with_seeds", "run_batched_seeds", "sweep"]

#: z-value for a 95% two-sided normal confidence interval.
_Z95 = 1.96


@dataclass(frozen=True)
class SeedSummary:
    """Aggregate of one scalar metric across seeds.

    This is the unit every sweep row carries: the per-seed values plus
    their mean, sample std and normal-approximation confidence interval.
    """

    values: tuple[float, ...]
    mean: float
    std: float
    ci95_halfwidth: float

    @property
    def n(self) -> int:
        """Number of seeds aggregated."""
        return len(self.values)

    @property
    def ci95(self) -> tuple[float, float]:
        """95% confidence interval for the mean (normal approximation)."""
        return (self.mean - self.ci95_halfwidth, self.mean + self.ci95_halfwidth)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.ci95_halfwidth:.2g} (n={self.n})"


class _PositionalSeedCall:
    """Adapter calling ``experiment(seed)`` positionally from point kwargs.

    Top-level (hence picklable whenever the wrapped experiment is), so
    :func:`repeat_with_seeds` keeps its documented ``experiment(seed)``
    calling convention — the seed parameter may be named anything — while
    the runner uniformly invokes points as keyword dictionaries.
    """

    def __init__(self, experiment: Callable[[int], float]) -> None:
        self.experiment = experiment

    def __call__(self, seed: int) -> float:
        return self.experiment(seed)


def _validate_seeds(seeds: Sequence[int]) -> list[int]:
    """Reject empty/invalid seed sequences with an actionable message."""
    seeds = list(seeds)
    if not seeds:
        raise ValueError(
            "seeds must contain at least one seed (e.g. seeds=[0]); "
            "got an empty sequence"
        )
    return seeds


def _validate_grid(grid: Mapping[str, Sequence]) -> None:
    """Reject empty grids, empty value lists and scalar/string values."""
    if not grid:
        raise ValueError(
            "grid must name at least one parameter, e.g. grid={'alpha': [0.5]}"
        )
    for name, values in grid.items():
        if isinstance(values, str):
            raise ValueError(
                f"grid[{name!r}] is the string {values!r}; wrap the values in "
                "a list (a bare string would sweep over its characters)"
            )
        try:
            count = len(values)
        except TypeError:
            raise ValueError(
                f"grid[{name!r}] must be a sequence of values to sweep, got "
                f"{type(values).__name__}"
            ) from None
        if count == 0:
            raise ValueError(
                f"grid[{name!r}] is empty; every swept parameter needs at "
                "least one value"
            )


def _summarize(values: Sequence[object], seeds: Sequence[int]) -> SeedSummary:
    """Fold per-seed scalars into a :class:`SeedSummary` (NaN is an error)."""
    floats = []
    for seed, value in zip(seeds, values):
        value = float(value)  # type: ignore[arg-type]
        if math.isnan(value):
            raise ValueError(f"experiment returned NaN for seed {seed}")
        floats.append(value)
    arr = np.array(floats)
    std = float(arr.std(ddof=1)) if len(floats) > 1 else 0.0
    halfwidth = _Z95 * std / math.sqrt(len(floats)) if len(floats) > 1 else 0.0
    return SeedSummary(
        values=tuple(floats),
        mean=float(arr.mean()),
        std=std,
        ci95_halfwidth=halfwidth,
    )


def run_batched_seeds(
    experiment: Callable[[int], float],
    seeds: Sequence[int],
) -> SeedSummary:
    """Fold all seeds through the experiment's vectorized batch path.

    ``experiment`` must expose ``run_batch(seeds) -> sequence of floats``
    (one value per seed, in seed order) — e.g.
    :class:`repro.fluid.BatchedFluidExperiment`, which stacks the seeds on
    one array axis and runs a single vectorized fluid pass instead of N
    event loops or N worker processes.  The per-seed values feed the same
    :class:`SeedSummary` the process-pool route produces; a conforming
    batch path makes them bit-identical to ``experiment(seed)`` per seed.
    """
    seeds = _validate_seeds(seeds)
    run_batch = getattr(experiment, "run_batch", None)
    if run_batch is None:
        raise TypeError(
            f"experiment {getattr(experiment, '__name__', experiment)!r} has "
            "no run_batch(seeds) method; use repeat_with_seeds for "
            "per-seed execution"
        )
    values = list(run_batch(seeds))
    if len(values) != len(seeds):
        raise ValueError(
            f"run_batch returned {len(values)} values for {len(seeds)} seeds"
        )
    return _summarize(values, seeds)


def repeat_with_seeds(
    experiment: Callable[[int], float],
    seeds: Sequence[int],
    *,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[RunTelemetry] = None,
    name: Optional[str] = None,
    batch: bool = False,
) -> SeedSummary:
    """Run ``experiment(seed)`` per seed and summarize the scalar results.

    ``workers``, ``cache`` and ``telemetry`` are forwarded to the
    :class:`~repro.harness.runner.ExperimentRunner` executing the seeds;
    ``name`` labels cache keys and the run-report (defaults to the
    experiment's ``__name__``).  ``batch=True`` routes through
    :func:`run_batched_seeds` when the experiment exposes a
    ``run_batch(seeds)`` vectorized path (see
    :class:`repro.fluid.BatchedFluidExperiment`), bypassing pool, cache
    and telemetry — one in-process array pass replaces the N point
    executions.  A ``batch=True`` experiment without ``run_batch`` is a
    ``TypeError``: silently degrading to N processes would defeat the
    reason the caller asked for batching.
    """
    if batch:
        return run_batched_seeds(experiment, seeds)
    seeds = _validate_seeds(seeds)
    runner = ExperimentRunner(
        name=name or getattr(experiment, "__name__", "experiment"),
        workers=workers,
        cache=cache,
        telemetry=telemetry,
    )
    values = runner.run_points(
        _PositionalSeedCall(experiment), [{"seed": seed} for seed in seeds]
    )
    return _summarize(values, seeds)


def sweep(
    experiment: Callable[..., float],
    grid: Mapping[str, Sequence],
    seeds: Sequence[int],
    *,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[RunTelemetry] = None,
    name: Optional[str] = None,
) -> list[dict]:
    """Cross a parameter grid with seed repetition.

    ``experiment`` is called as ``experiment(seed=..., **point)`` for every
    point in the Cartesian product of ``grid``.  Returns one row per point
    (in grid order): the parameter values plus a ``summary``
    :class:`SeedSummary`.

    Both the grid and the seed list are validated up front — an empty seed
    list or an empty parameter-value list fails immediately with a message
    naming the offending argument, not midway through the sweep.

    With ``workers=N`` the seed×grid points run on a process pool; because
    each point is an independent seeded computation the rows are
    bit-identical to a sequential run.  ``cache`` makes re-runs of an
    unchanged grid incremental and ``telemetry`` records the per-point
    JSON run-report (see docs/HARNESS.md).
    """
    _validate_grid(grid)
    seeds = _validate_seeds(seeds)
    names = list(grid)
    grid_points = [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[name] for name in names))
    ]
    runner = ExperimentRunner(
        name=name or getattr(experiment, "__name__", "experiment"),
        workers=workers,
        cache=cache,
        telemetry=telemetry,
    )
    tasks = [
        {**point, "seed": seed} for point in grid_points for seed in seeds
    ]
    values = runner.run_points(experiment, tasks)
    rows: list[dict] = []
    for index, point in enumerate(grid_points):
        start = index * len(seeds)
        summary = _summarize(values[start : start + len(seeds)], seeds)
        rows.append({**point, "summary": summary})
    return rows

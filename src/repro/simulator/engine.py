"""Discrete-event simulation engine.

A minimal, fast event core: a binary heap of plain ``[time, sequence,
callback]`` list entries.  Everything in the packet-level simulator —
link serialization, propagation, TCP timers, application phases — is
built on :class:`Simulator.schedule`.

Performance notes (see docs/PERFORMANCE.md for measurements):

* Heap entries are plain lists, not dataclasses.  A ``[t, seq, cb]``
  literal costs ~50 ns to build; a ``@dataclass(order=True)`` instance
  costs ~5x that and drags rich comparison through ``__lt__`` on every
  sift.  Tuples would be marginally cheaper still, but entries must be
  mutable so cancellation and firing can overwrite the callback slot
  in place.
* The entry returned by :meth:`Simulator.schedule` *is* the cancellation
  token: pass it to :meth:`Simulator.cancel`.  Cancellation is O(1) — it
  nulls the callback slot and bumps a counter, so
  :meth:`Simulator.pending_events` never scans the queue.  Call sites
  that want an object with ``.cancel()`` (rare, timer-style code) can use
  :meth:`Simulator.schedule_handle`, which wraps the entry in a
  ``__slots__`` :class:`EventHandle`.
* The hot ``run()`` loop binds ``heappop``/the queue to locals and has a
  branch-free fast path when no horizon, event budget, or calendar
  front-end is active.
* ``Simulator(calendar=True)`` enables an optional bucketed "calendar"
  front-end: events that share an *exact* timestamp are appended to a
  per-time bucket and the heap holds one marker per distinct time, so N
  same-time timers cost one heap push instead of N.  Firing order is
  identical to the plain heap (insertion order within a timestamp).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Deque, Dict, List, Optional, Protocol

__all__ = [
    "Simulator",
    "SimMonitor",
    "EventHandle",
    "EventEntry",
    "total_events_processed",
]


class SimMonitor(Protocol):
    """What the engine needs from a monitor (``repro.guards.GuardRail``).

    Duck-typed on purpose: the engine must stay importable without the
    guards package (no upward dependency), so it only requires this one
    method rather than the concrete class.
    """

    def violation(
        self, guard: str, subject: str, time: float, message: str
    ) -> object:
        """Report one invariant violation (see ``GuardRail.violation``)."""
        ...

#: Opaque token for a scheduled event.  Layout is ``[time, sequence,
#: callback]``; treat it as opaque outside this module and pass it to
#: :meth:`Simulator.cancel` / :meth:`Simulator.is_cancelled`.
EventEntry = List[Any]

#: Cumulative callbacks executed by every :class:`Simulator` in this process.
#: The harness telemetry layer (:mod:`repro.harness.telemetry`) snapshots it
#: around each experiment point to attribute simulation work per point, even
#: when the point builds several Simulator instances internally.
_TOTAL_EVENTS_PROCESSED = 0


def total_events_processed() -> int:
    """Process-wide count of simulator callbacks executed so far.

    Unlike :attr:`Simulator.events_processed` (one instance's counter), this
    aggregates across all instances created in the current process, which is
    what per-experiment-point instrumentation needs: one sweep point may run
    many simulations.  In a worker process forked by the experiment runner,
    the *delta* across a point is measured in that worker and shipped back.
    """
    return _TOTAL_EVENTS_PROCESSED


class _Sentinel:
    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self._name

    def __call__(self) -> None:  # pragma: no cover - never fired
        raise AssertionError(f"sentinel {self._name} must not be called")


#: Callback-slot sentinel: the event already fired (cancel is a no-op).
_FIRED = _Sentinel("<fired>")
#: Callback-slot sentinel: heap entry is a marker for a calendar bucket.
_BUCKET = _Sentinel("<bucket>")


class EventHandle:
    """Object-style view of a scheduled event, for timer ergonomics.

    The fast path returns raw :data:`EventEntry` tokens; this wrapper
    exists for call sites that prefer ``handle.cancel()`` over
    ``sim.cancel(entry)`` and for backwards compatibility with the
    pre-rewrite API.  Build one with :meth:`Simulator.schedule_handle`.
    """

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: EventEntry) -> None:
        self._sim = sim
        self._entry = entry

    @property
    def time(self) -> float:
        """Absolute simulation time the event fires at."""
        return float(self._entry[0])

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._entry[2] is None

    def cancel(self) -> None:
        """Cancel the underlying event (idempotent, O(1))."""
        self._sim.cancel(self._entry)


class Simulator:
    """Event queue with a monotonically advancing clock.

    :param calendar: enable the bucketed same-timestamp front-end
        (identical firing order, fewer heap operations when many events
        share exact times).  Default off.
    :param monitor: optional :class:`SimMonitor` (a
        ``repro.guards.GuardRail``).  When set, the event loop checks two
        engine invariants per dispatched event — dispatch times never run
        backwards (``engine-monotonic``) and the clock keeps advancing
        (``engine-stall``: ``stall_event_limit`` consecutive events at one
        timestamp is a zero-delay livelock).  When ``None`` (the default)
        the branch-free hot path runs and nothing is paid.
    :param stall_event_limit: events allowed at a single timestamp before
        the monitor's ``engine-stall`` guard fires (once per run).
    """

    __slots__ = (
        "now",
        "_queue",
        "_counter",
        "_events_processed",
        "_cancelled",
        "_calendar",
        "_buckets",
        "_bucketed",
        "_monitor",
        "_stall_event_limit",
    )

    def __init__(
        self,
        calendar: bool = False,
        monitor: Optional[SimMonitor] = None,
        stall_event_limit: int = 1_000_000,
    ) -> None:
        if stall_event_limit < 1:
            raise ValueError(
                f"stall_event_limit must be positive, got {stall_event_limit!r}"
            )
        self.now: float = 0.0
        self._queue: list[EventEntry] = []
        self._counter = count()
        self._events_processed = 0
        #: Cancelled entries still resident in the queue (or buckets).
        self._cancelled = 0
        self._calendar = bool(calendar)
        self._buckets: Dict[float, Deque[EventEntry]] = {}
        #: Entries resident in calendar buckets (calendar mode only).
        self._bucketed = 0
        self._monitor = monitor
        self._stall_event_limit = stall_event_limit

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for performance reports)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventEntry:
        """Run ``callback`` ``delay`` seconds from now.

        Returns the opaque event entry; pass it to :meth:`cancel` to
        cancel the event (or ignore it — most call sites do).
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        time = self.now + delay
        entry = [time, next(self._counter), callback]
        if self._calendar:
            self._bucket_push(time, entry)
        else:
            heappush(self._queue, entry)
        return entry

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventEntry:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: time={time!r} < now={self.now!r}"
            )
        entry = [time, next(self._counter), callback]
        if self._calendar:
            self._bucket_push(time, entry)
        else:
            heappush(self._queue, entry)
        return entry

    def schedule_handle(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """:meth:`schedule`, wrapped in an :class:`EventHandle`."""
        return EventHandle(self, self.schedule(delay, callback))

    def _bucket_push(self, time: float, entry: EventEntry) -> None:
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = deque((entry,))
            heappush(self._queue, [time, entry[1], _BUCKET])
        else:
            bucket.append(entry)
        self._bucketed += 1

    def cancel(self, entry: EventEntry) -> None:
        """Cancel a scheduled event (O(1), idempotent).

        Cancelling an event that already fired is a no-op, matching
        timer semantics: a late ``cancel`` after the callback ran must
        not corrupt the live-event bookkeeping.
        """
        cb = entry[2]
        if cb is None or cb is _FIRED:
            return
        entry[2] = None
        self._cancelled += 1

    def is_cancelled(self, entry: EventEntry) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return entry[2] is None

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Process events in time order.

        Stops when the queue empties, the clock passes ``until``, or
        ``max_events`` callbacks have run (a runaway guard for tests).
        """
        global _TOTAL_EVENTS_PROCESSED
        queue = self._queue
        processed = 0
        try:
            if (
                until is None
                and max_events is None
                and not self._calendar
                and self._monitor is None
            ):
                # Hot path: no horizon, no budget, plain heap, no monitor.
                pop = heappop
                while queue:
                    entry = pop(queue)
                    cb = entry[2]
                    if cb is None:
                        self._cancelled -= 1
                        continue
                    entry[2] = _FIRED
                    self.now = entry[0]
                    cb()
                    processed += 1
            else:
                processed = self._run_general(until, max_events)
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._events_processed += processed
            _TOTAL_EVENTS_PROCESSED += processed

    def _run_general(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        """Slow-path loop: horizons, event budgets, calendar buckets,
        monitored invariant checks."""
        queue = self._queue
        processed = 0
        monitor = self._monitor
        stall_limit = self._stall_event_limit
        # Stall tracking: consecutive dispatches that fail to advance the
        # clock past ``last_time``.  Ordered comparisons only — exact float
        # equality is precisely what a zero-delay livelock produces, and we
        # must not depend on it (repro-lint FLT001).
        last_time = self.now
        stall_count = 0
        while queue:
            if max_events is not None and processed >= max_events:
                break
            entry = queue[0]
            time = entry[0]
            if until is not None and time > until:
                # Leave the entry queued so a later run() resumes, and
                # stop the clock exactly at the horizon.
                self.now = until
                break
            heappop(queue)
            cb = entry[2]
            if cb is None:
                self._cancelled -= 1
                continue
            if monitor is not None:
                if time < self.now:
                    monitor.violation(
                        "engine-monotonic",
                        "engine",
                        self.now,
                        f"event scheduled at {time!r} dispatched after the "
                        f"clock reached {self.now!r}",
                    )
                if time > last_time:
                    last_time = time
                    stall_count = 0
                else:
                    stall_count += 1
                    if stall_count == stall_limit:
                        monitor.violation(
                            "engine-stall",
                            "engine",
                            time,
                            f"{stall_count} consecutive events without the "
                            f"clock advancing past {last_time!r}; "
                            "zero-delay livelock?",
                        )
            if cb is _BUCKET:
                processed += self._drain_bucket(
                    time,
                    None if max_events is None else max_events - processed,
                )
                continue
            entry[2] = _FIRED
            self.now = time
            cb()
            processed += 1
        return processed

    def _drain_bucket(self, time: float, budget: Optional[int]) -> int:
        """Fire the calendar bucket at ``time``; returns callbacks run.

        Callbacks may schedule new events at the same timestamp; those
        land in a *fresh* bucket (with a fresh heap marker) and fire
        after this one drains, which is exactly the plain-heap order.
        If ``budget`` runs out mid-bucket the remainder is re-queued
        ahead of any such fresh bucket, preserving sequence order.
        """
        bucket = self._buckets.pop(time)
        self.now = time
        processed = 0
        while bucket:
            if budget is not None and processed >= budget:
                self._requeue_bucket_remainder(time, bucket)
                break
            entry = bucket.popleft()
            self._bucketed -= 1
            cb = entry[2]
            if cb is None:
                self._cancelled -= 1
                continue
            entry[2] = _FIRED
            cb()
            processed += 1
        return processed

    def _requeue_bucket_remainder(
        self, time: float, remainder: Deque[EventEntry]
    ) -> None:
        fresh = self._buckets.get(time)
        if fresh is None:
            self._buckets[time] = remainder
            heappush(self._queue, [time, remainder[0][1], _BUCKET])
        else:
            # A callback in this bucket scheduled same-time events before
            # the budget ran out; they must fire after the remainder.
            fresh.extendleft(reversed(remainder))

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty.

        Lazily prunes cancelled entries off the top, keeping the
        cancelled-count bookkeeping consistent so
        :meth:`pending_events` stays exact (regression: the pre-rewrite
        version popped without bookkeeping).
        """
        queue = self._queue
        while queue:
            top = queue[0]
            cb = top[2]
            if cb is None:
                heappop(queue)
                self._cancelled -= 1
                continue
            if cb is _BUCKET:
                bucket = self._buckets[top[0]]
                while bucket and bucket[0][2] is None:
                    bucket.popleft()
                    self._bucketed -= 1
                    self._cancelled -= 1
                if not bucket:
                    del self._buckets[top[0]]
                    heappop(queue)
                    continue
            return float(top[0])
        return None

    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued — O(1)."""
        if self._calendar:
            return self._bucketed - self._cancelled
        return len(self._queue) - self._cancelled

"""Discrete-event simulation engine.

A minimal, fast event core: a binary heap of ``(time, sequence, callback)``
entries with cancellable handles.  Everything in the packet-level simulator —
link serialization, propagation, TCP timers, application phases — is built
on :class:`Simulator.schedule`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Simulator", "EventHandle", "total_events_processed"]

#: Cumulative callbacks executed by every :class:`Simulator` in this process.
#: The harness telemetry layer (:mod:`repro.harness.telemetry`) snapshots it
#: around each experiment point to attribute simulation work per point, even
#: when the point builds several Simulator instances internally.
_TOTAL_EVENTS_PROCESSED = 0


def total_events_processed() -> int:
    """Process-wide count of simulator callbacks executed so far.

    Unlike :attr:`Simulator.events_processed` (one instance's counter), this
    aggregates across all instances created in the current process, which is
    what per-experiment-point instrumentation needs: one sweep point may run
    many simulations.  In a worker process forked by the experiment runner,
    the *delta* across a point is measured in that worker and shipped back.
    """
    return _TOTAL_EVENTS_PROCESSED


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event; supports cancellation (timers)."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time the event fires at."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event dead; it is skipped when popped (lazy deletion)."""
        self._event.cancelled = True


class Simulator:
    """Event queue with a monotonically advancing clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[_Event] = []
        self._counter = itertools.count()
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for performance reports)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: time={time!r} < now={self.now!r}"
            )
        event = _Event(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Process events in time order.

        Stops when the queue empties, the clock passes ``until``, or
        ``max_events`` callbacks have run (a runaway guard for tests).
        """
        global _TOTAL_EVENTS_PROCESSED
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if until is not None and event.time > until:
                    # Put it back so a later run() can resume, and stop the
                    # clock exactly at the horizon.
                    heapq.heappush(self._queue, event)
                    self.now = until
                    return
                self.now = event.time
                event.callback()
                processed += 1
                self._events_processed += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            _TOTAL_EVENTS_PROCESSED += processed

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

"""Output queue disciplines for links and switches.

Three disciplines cover the substrates the paper's world assumes:

* :class:`DropTailQueue` — the commodity default; TCP Reno's loss signal.
* :class:`EcnQueue` — DCTCP-style step marking: packets are marked
  congestion-experienced when the instantaneous queue exceeds threshold K.
* :class:`PriorityQueue` — pFabric-style: dequeue the lowest-priority-value
  packet first, drop the highest-priority-value packet when full.
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from collections import deque
from typing import Optional

from .packet import Packet

__all__ = ["QueueDiscipline", "DropTailQueue", "EcnQueue", "PriorityQueue"]


class QueueDiscipline(ABC):
    """A bounded packet buffer attached to a link's transmitter."""

    def __init__(self, capacity_packets: int) -> None:
        if capacity_packets < 1:
            raise ValueError(
                f"capacity_packets must be positive, got {capacity_packets!r}"
            )
        self.capacity_packets = capacity_packets
        self.drops = 0
        self.enqueued = 0

    @abstractmethod
    def push(self, packet: Packet) -> bool:
        """Accept or drop ``packet``.  Returns True when accepted."""

    @abstractmethod
    def pop(self) -> Optional[Packet]:
        """Remove and return the next packet to transmit, or None if empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Packets currently buffered."""

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets dropped so far."""
        offered = self.enqueued + self.drops
        return self.drops / offered if offered else 0.0


class DropTailQueue(QueueDiscipline):
    """FIFO; arrivals beyond capacity are dropped."""

    def __init__(self, capacity_packets: int) -> None:
        super().__init__(capacity_packets)
        self._buffer: deque[Packet] = deque()

    def push(self, packet: Packet) -> bool:
        """FIFO admit; tail-drop at capacity."""
        if len(self._buffer) >= self.capacity_packets:
            self.drops += 1
            return False
        self._buffer.append(packet)
        self.enqueued += 1
        return True

    def pop(self) -> Optional[Packet]:
        """Dequeue the oldest buffered packet."""
        return self._buffer.popleft() if self._buffer else None

    def buffered(self) -> tuple[Packet, ...]:
        """Snapshot of the buffer in FIFO order (for link burst planning)."""
        return tuple(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class EcnQueue(DropTailQueue):
    """Drop-tail FIFO with DCTCP step marking at threshold ``mark_threshold``.

    An arriving ECN-capable packet is marked CE when the queue it joins
    already holds at least ``mark_threshold`` packets; non-capable packets
    are simply dropped at capacity as usual.
    """

    def __init__(self, capacity_packets: int, mark_threshold: int) -> None:
        super().__init__(capacity_packets)
        if not 0 < mark_threshold <= capacity_packets:
            raise ValueError(
                f"mark_threshold must be in (0, capacity], got {mark_threshold!r}"
            )
        self.mark_threshold = mark_threshold
        self.marks = 0

    def push(self, packet: Packet) -> bool:
        """Admit like drop-tail, CE-marking above the threshold."""
        if packet.ecn_capable and len(self._buffer) >= self.mark_threshold:
            packet.ecn_ce = True
            self.marks += 1
        return super().push(packet)


class PriorityQueue(QueueDiscipline):
    """pFabric-style priority buffer.

    ``Packet.priority`` is "remaining flow bytes": the *smallest* value is
    transmitted first, and when the buffer is full an arriving packet with a
    smaller priority value evicts the buffered packet with the largest one.
    Ties break by arrival order (FIFO within a priority).
    """

    def __init__(self, capacity_packets: int) -> None:
        super().__init__(capacity_packets)
        self._heap: list[tuple[float, int, Packet]] = []
        self._counter = itertools.count()

    def push(self, packet: Packet) -> bool:
        """Admit; when full, evict the worst-priority buffered packet."""
        if len(self._heap) >= self.capacity_packets:
            worst_index = max(
                range(len(self._heap)), key=lambda i: (self._heap[i][0], -self._heap[i][1])
            )
            worst_priority, _seq, _pkt = self._heap[worst_index]
            if packet.priority >= worst_priority:
                self.drops += 1
                return False
            # Evict the worst buffered packet to admit the better one.
            self._heap[worst_index] = self._heap[-1]
            self._heap.pop()
            heapq.heapify(self._heap)
            self.drops += 1
        heapq.heappush(self._heap, (packet.priority, next(self._counter), packet))
        self.enqueued += 1
        return True

    def pop(self) -> Optional[Packet]:
        """Dequeue the best-priority (lowest value) packet."""
        if not self._heap:
            return None
        _priority, _seq, packet = heapq.heappop(self._heap)
        return packet

    def __len__(self) -> int:
        return len(self._heap)

"""Network nodes: hosts (transport endpoints) and output-queued switches."""

from __future__ import annotations

from typing import Protocol

from .link import Link
from .packet import Packet

__all__ = ["PacketSink", "Node", "Host", "Switch"]


class PacketSink(Protocol):
    """Anything that can accept a delivered packet (e.g. a TCP connection)."""

    def receive(self, packet: Packet) -> None:
        """Consume one delivered packet."""
        ...


class Node:
    """Common behaviour: named, owns outgoing links keyed by neighbour."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.links: dict[str, Link] = {}

    def attach_outgoing(self, neighbour: str, link: Link) -> None:
        """Register the outgoing link towards ``neighbour``."""
        if neighbour in self.links:
            raise ValueError(f"{self.name}: link to {neighbour} already attached")
        self.links[neighbour] = link

    def receive_packet(self, packet: Packet) -> None:
        """Handle a packet arriving at this node (terminate or forward)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """End host: sources packets from transports, demuxes arrivals by flow."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._flows: dict[str, PacketSink] = {}
        self._next_hop: dict[str, str] = {}

    def register_flow(self, flow_id: str, sink: PacketSink) -> None:
        """Demux arriving packets of ``flow_id`` to ``sink``."""
        if flow_id in self._flows:
            raise ValueError(f"{self.name}: flow {flow_id} already registered")
        self._flows[flow_id] = sink

    def flow_sink(self, flow_id: str) -> PacketSink:
        """The registered sink of ``flow_id`` (used by fault injectors to
        find a flow's transport endpoint, e.g. for a restart resync)."""
        try:
            return self._flows[flow_id]
        except KeyError:
            raise KeyError(
                f"{self.name}: no flow {flow_id!r} registered; flows: "
                f"{sorted(self._flows)}"
            ) from None

    def set_route(self, dst: str, neighbour: str) -> None:
        """Packets for host ``dst`` leave via the link to ``neighbour``."""
        if neighbour not in self.links:
            raise ValueError(f"{self.name}: no link to {neighbour}")
        self._next_hop[dst] = neighbour

    def send(self, packet: Packet) -> None:
        """Emit a locally generated packet toward its destination."""
        neighbour = self._next_hop.get(packet.dst)
        if neighbour is None:
            raise RuntimeError(f"{self.name}: no route to {packet.dst}")
        self.links[neighbour].send(packet)

    def receive_packet(self, packet: Packet) -> None:
        """Handle a packet that terminated at this host."""
        sink = self._flows.get(packet.flow_id)
        if sink is None:
            raise RuntimeError(
                f"{self.name}: no flow {packet.flow_id!r} registered for {packet!r}"
            )
        sink.receive(packet)


class Switch(Node):
    """Output-queued switch with static destination-based forwarding."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._next_hop: dict[str, str] = {}
        self.packets_forwarded = 0

    def set_route(self, dst: str, neighbour: str) -> None:
        """Packets for host ``dst`` are forwarded over the link to ``neighbour``."""
        if neighbour not in self.links:
            raise ValueError(f"{self.name}: no link to {neighbour}")
        self._next_hop[dst] = neighbour

    def receive_packet(self, packet: Packet) -> None:
        """Forward a transiting packet toward its destination host."""
        neighbour = self._next_hop.get(packet.dst)
        if neighbour is None:
            raise RuntimeError(f"{self.name}: no route to {packet.dst}")
        self.packets_forwarded += 1
        self.links[neighbour].send(packet)

"""Topology builders: the paper's dumbbell, plus a general graph builder.

The paper's testbed is "eight A100 GPU servers connected in a dumbbell
topology with a single bottleneck link" — each job places its two workers on
opposite sides of the bottleneck.  :func:`build_dumbbell` reproduces that
shape: N senders on the left, N receivers on the right, two switches, and a
single bottleneck link whose rate and queue the experiments control.

:func:`build_from_graph` accepts any networkx graph with per-edge rate/delay
attributes and installs shortest-path routes, for topologies beyond the
paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

import networkx as nx
import numpy as np

from ..workloads.placement import FabricSpec, ecmp_index
from .engine import Simulator
from .link import Link
from .node import Host, Node, Switch
from .queues import DropTailQueue, QueueDiscipline

__all__ = [
    "Network",
    "RoutingProvider",
    "build_dumbbell",
    "build_leaf_spine",
    "build_fat_tree",
    "build_from_graph",
]


class RoutingProvider(Protocol):
    """Anything that can answer "what is the current path src -> dst?".

    ``None`` means no path currently survives.  Implemented by
    :class:`repro.faults.routing.FabricRoutingState`; the indirection keeps
    the simulator layer free of fault-subsystem imports.
    """

    def path_nodes(self, src: str, dst: str) -> Optional[tuple[str, ...]]:
        ...


@dataclass
class Network:
    """A wired-up topology: nodes, links and the simulator that drives them."""

    sim: Simulator
    hosts: dict[str, Host] = field(default_factory=dict)
    switches: dict[str, Switch] = field(default_factory=dict)
    links: dict[tuple[str, str], Link] = field(default_factory=dict)
    #: Every path programmed via :meth:`install_route`, keyed by
    #: ``(src_host, dst_host)`` — the packet-side ground truth the ECMP
    #: determinism tests compare against the fluid side's ``path_nodes``.
    routes: dict[tuple[str, str], tuple[str, ...]] = field(default_factory=dict)

    def node(self, name: str) -> Node:
        """Look up a host or switch by name."""
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise KeyError(f"no node named {name!r}")

    def link(self, src: str, dst: str) -> Link:
        """Look up the unidirectional link ``src -> dst``."""
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src} -> {dst}") from None

    def add_host(self, name: str) -> Host:
        """Create and register a host."""
        if name in self.hosts or name in self.switches:
            raise ValueError(f"node {name!r} already exists")
        host = Host(name)
        self.hosts[name] = host
        return host

    def add_switch(self, name: str) -> Switch:
        """Create and register a switch."""
        if name in self.hosts or name in self.switches:
            raise ValueError(f"node {name!r} already exists")
        switch = Switch(name)
        self.switches[name] = switch
        return switch

    def add_link(
        self,
        src: str,
        dst: str,
        rate_bps: float,
        delay: float,
        queue: Optional[QueueDiscipline] = None,
        random_loss: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
    ) -> Link:
        """Create the unidirectional link ``src -> dst`` and attach it."""
        if (src, dst) in self.links:
            raise ValueError(f"link {src} -> {dst} already exists")
        link = Link(
            self.sim,
            name=f"{src}->{dst}",
            rate_bps=rate_bps,
            delay=delay,
            queue=queue,
            random_loss=random_loss,
            loss_rng=loss_rng,
        )
        self.node(src).attach_outgoing(dst, link)
        link.connect(self.node(dst).receive_packet)
        self.links[(src, dst)] = link
        return link

    def install_route(self, src_host: str, dst_host: str, path: list[str]) -> None:
        """Program per-hop next-hop entries along ``path`` (node names)."""
        if path[0] != src_host or path[-1] != dst_host:
            raise ValueError(
                f"path must run {src_host} -> {dst_host}, got {path}"
            )
        for intermediate in path[1:-1]:
            if intermediate not in self.switches:
                raise ValueError(
                    f"intermediate node {intermediate!r} is not a switch; "
                    "hosts cannot forward transit traffic"
                )
        for here, nxt in zip(path, path[1:]):
            node = self.node(here)
            # Every node a Network creates is a Host or a Switch; the base
            # Node has no routing table, so narrow before set_route.
            assert isinstance(node, (Host, Switch))
            node.set_route(dst_host, nxt)
        self.routes[(src_host, dst_host)] = tuple(path)

    def apply_routing(self, routing: "RoutingProvider") -> int:
        """Reinstall every installed route whose current path changed.

        ``routing`` is any provider with a ``path_nodes(src, dst)`` method —
        in practice :class:`repro.faults.routing.FabricRoutingState`, which
        recomputes ECMP over the surviving spines after a fabric fault.
        Pairs whose provider path is ``None`` (no surviving path) keep their
        previously installed route: their packets blackhole at the severed
        link until a reversion restores connectivity and this method runs
        again.  Returns the number of routes reinstalled, and is iteration-
        order deterministic (sorted host pairs) so reruns reroute
        identically.
        """
        rerouted = 0
        for src, dst in sorted(self.routes):
            path = routing.path_nodes(src, dst)
            if path is not None and tuple(path) != self.routes[(src, dst)]:
                self.install_route(src, dst, list(path))
                rerouted += 1
        return rerouted

    def link_utilization(self, elapsed: Optional[float] = None) -> dict[str, float]:
        """Mean utilization of every link over ``elapsed`` seconds.

        Utilization is ``bits_sent / (rate * elapsed)`` — the fraction of
        the link's capacity the run actually used.  ``elapsed`` defaults to
        the simulator clock; links are keyed by their ``"src->dst"`` name,
        sorted, so reports are deterministic.
        """
        seconds = self.sim.now if elapsed is None else elapsed
        if elapsed is not None and elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed!r}")
        return {
            link.name: (
                link.bits_sent / (link.rate_bps * seconds) if seconds > 0 else 0.0
            )
            for _key, link in sorted(self.links.items())
        }


def build_dumbbell(
    sim: Simulator,
    n_pairs: int,
    bottleneck_bps: float,
    edge_bps: Optional[float] = None,
    link_delay: float = 5e-6,
    bottleneck_queue: Optional[QueueDiscipline] = None,
    reverse_queue: Optional[QueueDiscipline] = None,
    edge_queue_capacity: int = 256,
    bottleneck_random_loss: float = 0.0,
    loss_seed: int = 0,
) -> Network:
    """The paper's testbed shape: ``n_pairs`` sender/receiver host pairs.

    Hosts ``s0..s{n-1}`` connect to switch ``sw_l``; ``r0..r{n-1}`` to
    ``sw_r``; the ``sw_l -> sw_r`` link is the bottleneck (data direction)
    and ``sw_r -> sw_l`` carries the ACK stream.  Edge links default to 4x
    the bottleneck so only the middle link can congest, matching the paper's
    single-bottleneck assumption.
    """
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be positive, got {n_pairs!r}")
    if bottleneck_bps <= 0:
        raise ValueError(f"bottleneck_bps must be positive, got {bottleneck_bps!r}")
    if edge_bps is None:
        edge_bps = 4.0 * bottleneck_bps

    network = Network(sim=sim)
    network.add_switch("sw_l")
    network.add_switch("sw_r")
    loss_rng = np.random.default_rng(loss_seed)
    if bottleneck_queue is None:
        bottleneck_queue = DropTailQueue(capacity_packets=100)
    if reverse_queue is None:
        reverse_queue = DropTailQueue(capacity_packets=1024)
    network.add_link(
        "sw_l",
        "sw_r",
        bottleneck_bps,
        link_delay,
        queue=bottleneck_queue,
        random_loss=bottleneck_random_loss,
        loss_rng=loss_rng,
    )
    network.add_link(
        "sw_r",
        "sw_l",
        bottleneck_bps,
        link_delay,
        queue=reverse_queue,
    )

    for i in range(n_pairs):
        sender, receiver = f"s{i}", f"r{i}"
        network.add_host(sender)
        network.add_host(receiver)
        for a, b in ((sender, "sw_l"), ("sw_l", sender), (receiver, "sw_r"), ("sw_r", receiver)):
            network.add_link(
                a, b, edge_bps, link_delay, queue=DropTailQueue(edge_queue_capacity)
            )
        network.install_route(sender, receiver, [sender, "sw_l", "sw_r", receiver])
        network.install_route(receiver, sender, [receiver, "sw_r", "sw_l", sender])
    return network


def build_leaf_spine(
    sim: Simulator,
    n_leaves: int,
    hosts_per_leaf: int,
    leaf_uplink_bps: float,
    edge_bps: Optional[float] = None,
    link_delay: float = 5e-6,
    uplink_queue_capacity: int = 100,
    edge_queue_capacity: int = 256,
    n_spines: int = 1,
    ecmp_seed: int = 0,
) -> Network:
    """A two-tier leaf-spine fabric with one or more spine switches.

    Hosts are named ``h{leaf}_{index}``; each leaf switch ``leaf{i}``
    connects its hosts at ``edge_bps`` (default 4x the uplink) and reaches
    every other leaf through a spine over a ``leaf_uplink_bps`` uplink —
    so each leaf's uplinks are independent bottlenecks.  Used by the
    multi-bottleneck experiments: MLTCP must interleave the jobs on *each*
    congested uplink independently, with no coordination across them.

    With ``n_spines == 1`` (the default) the single spine keeps its
    historical name ``"spine"``; with more, spines are named ``spine0``,
    ``spine1``, ... and each leaf picks the spine for a destination via
    the deterministic seeded ECMP rule
    (:func:`repro.workloads.placement.ecmp_index`): routing tables are
    destination-keyed, so the choice is per ``(leaf, dst)``, identical
    across reruns and substrates for the same ``ecmp_seed``.
    """
    if n_leaves < 2:
        raise ValueError(f"n_leaves must be at least 2, got {n_leaves!r}")
    if hosts_per_leaf < 1:
        raise ValueError(f"hosts_per_leaf must be positive, got {hosts_per_leaf!r}")
    if leaf_uplink_bps <= 0:
        raise ValueError(f"leaf_uplink_bps must be positive, got {leaf_uplink_bps!r}")
    if n_spines < 1:
        raise ValueError(f"n_spines must be positive, got {n_spines!r}")
    if edge_bps is None:
        edge_bps = 4.0 * leaf_uplink_bps

    spine_names = (
        ["spine"] if n_spines == 1 else [f"spine{k}" for k in range(n_spines)]
    )
    network = Network(sim=sim)
    for spine_name in spine_names:
        network.add_switch(spine_name)
    for leaf in range(n_leaves):
        leaf_name = f"leaf{leaf}"
        network.add_switch(leaf_name)
        for spine_name in spine_names:
            network.add_link(
                leaf_name,
                spine_name,
                leaf_uplink_bps,
                link_delay,
                queue=DropTailQueue(uplink_queue_capacity),
            )
            network.add_link(
                spine_name,
                leaf_name,
                leaf_uplink_bps,
                link_delay,
                queue=DropTailQueue(uplink_queue_capacity),
            )
        for index in range(hosts_per_leaf):
            host_name = f"h{leaf}_{index}"
            network.add_host(host_name)
            network.add_link(
                host_name, leaf_name, edge_bps, link_delay,
                queue=DropTailQueue(edge_queue_capacity),
            )
            network.add_link(
                leaf_name, host_name, edge_bps, link_delay,
                queue=DropTailQueue(edge_queue_capacity),
            )

    # Static routes: intra-leaf direct, inter-leaf via an ECMP-chosen spine.
    host_names = list(network.hosts)
    for src in host_names:
        src_leaf = f"leaf{src[1:].split('_')[0]}"
        for dst in host_names:
            if dst == src:
                continue
            dst_leaf = f"leaf{dst[1:].split('_')[0]}"
            if src_leaf == dst_leaf:
                path = [src, src_leaf, dst]
            else:
                spine = spine_names[ecmp_index(ecmp_seed, src_leaf, dst, n_spines)]
                path = [src, src_leaf, spine, dst_leaf, dst]
            network.install_route(src, dst, path)
    return network


def build_fat_tree(
    sim: Simulator,
    spec: FabricSpec,
    link_delay: float = 5e-6,
    uplink_queue_capacity: int = 100,
    edge_queue_capacity: int = 256,
) -> Network:
    """The packet-side realization of a :class:`FabricSpec` fat-tree.

    One switch per rack (``rack{i}``) and spine (``spine{k}``), hosts
    ``h{rack}_{index}`` attached at ``spec.host_gbps``, and every
    rack<->spine pair wired at ``spec.uplink_gbps`` — the oversubscribed
    links.  Rates and paths come from the spec itself
    (:meth:`FabricSpec.capacities_gbps`, :meth:`FabricSpec.path_nodes`),
    so a fluid run over :func:`repro.fluid.fabric.fabric_capacities` of
    the same spec shares this fabric's exact capacity model and routes.
    """
    network = Network(sim=sim)
    for spine in range(spec.n_spines):
        network.add_switch(spec.spine_name(spine))
    for rack in range(spec.n_racks):
        rack_name = spec.rack_name(rack)
        network.add_switch(rack_name)
        for spine in range(spec.n_spines):
            spine_name = spec.spine_name(spine)
            for a, b in ((rack_name, spine_name), (spine_name, rack_name)):
                network.add_link(
                    a, b, spec.uplink_gbps * 1e9, link_delay,
                    queue=DropTailQueue(uplink_queue_capacity),
                )
        for index in range(spec.hosts_per_rack):
            host_name = spec.host_name(rack, index)
            network.add_host(host_name)
            for a, b in ((host_name, rack_name), (rack_name, host_name)):
                network.add_link(
                    a, b, spec.host_gbps * 1e9, link_delay,
                    queue=DropTailQueue(edge_queue_capacity),
                )

    for src in spec.host_names():
        for dst in spec.host_names():
            if dst == src:
                continue
            network.install_route(src, dst, list(spec.path_nodes(src, dst)))
    return network


def build_from_graph(
    sim: Simulator,
    graph: nx.Graph,
    default_rate_bps: float = 1e9,
    default_delay: float = 5e-6,
    default_queue_capacity: int = 100,
) -> Network:
    """Build a network from a networkx graph and install shortest-path routes.

    Nodes with attribute ``kind="switch"`` become switches; all others are
    hosts.  Edges may carry ``rate_bps``, ``delay`` and ``queue_capacity``
    attributes; both directions of each edge become independent links.
    Routes are installed between every pair of hosts along delay-weighted
    shortest paths.
    """
    network = Network(sim=sim)
    for name, data in graph.nodes(data=True):
        if data.get("kind") == "switch":
            network.add_switch(str(name))
        else:
            network.add_host(str(name))
    for u, v, data in graph.edges(data=True):
        rate = data.get("rate_bps", default_rate_bps)
        delay = data.get("delay", default_delay)
        capacity = data.get("queue_capacity", default_queue_capacity)
        for a, b in ((str(u), str(v)), (str(v), str(u))):
            network.add_link(
                a, b, rate, delay, queue=DropTailQueue(capacity_packets=capacity)
            )
    weighted = graph.copy()
    for u, v, data in weighted.edges(data=True):
        data["weight"] = data.get("delay", default_delay)
    host_names = list(network.hosts)
    for src in host_names:
        paths = nx.single_source_dijkstra_path(weighted, src, weight="weight")
        for dst in host_names:
            if dst == src:
                continue
            if dst not in paths:
                raise ValueError(f"no path from {src} to {dst}")
            network.install_route(src, dst, [str(n) for n in paths[dst]])
    return network

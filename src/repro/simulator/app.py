"""Application layer: periodic DNN training traffic over the packet network.

A :class:`TrainingApp` reproduces the paper's job behaviour on one flow:
send the iteration's collective (``TOTAL_BYTES``), wait for the transport to
acknowledge all of it, then "compute" for ``compute_time`` seconds (with the
§4 Gaussian jitter) and start the next iteration.  The flow-arrival
dependency that defines DNN traffic — the next iteration's flows start only
when the previous iteration completes — is therefore structural.

Works with both window-based senders (:class:`~repro.tcp.base.TcpSender`)
and rate-based ones (:class:`~repro.tcp.dcqcn.RateSender`); anything with
``send_bytes`` and an ``on_all_acked`` callback slot fits
:class:`SenderLike`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

import numpy as np

from ..workloads.job import JobSpec
from .engine import Simulator

__all__ = [
    "SenderLike",
    "AppIteration",
    "TrainingApp",
    "MultiFlowTrainingApp",
    "RequestApp",
]


class SenderLike(Protocol):
    """Transport interface a training app drives."""

    on_all_acked: Optional[Callable[[], None]]

    def send_bytes(self, nbytes: int) -> int:
        """Queue ``nbytes`` for delivery; returns segments enqueued."""
        ...


@dataclass(frozen=True)
class AppIteration:
    """One completed iteration as observed by the application."""

    index: int
    comm_start: float
    comm_end: float
    iteration_end: float

    @property
    def comm_duration(self) -> float:
        """Wall-clock length of the communication phase."""
        return self.comm_end - self.comm_start

    @property
    def duration(self) -> float:
        """Iteration time: comm start to the start of the next comm phase."""
        return self.iteration_end - self.comm_start


class TrainingApp:
    """Drives one job's periodic communicate/compute loop over a transport."""

    def __init__(
        self,
        sim: Simulator,
        sender: SenderLike,
        job: JobSpec,
        max_iterations: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_iterations is not None and max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {max_iterations!r}")
        self.sim = sim
        self.sender = sender
        self.job = job
        self.max_iterations = max_iterations
        self._rng = rng
        self.iterations: list[AppIteration] = []
        self._index = 0
        self._comm_start: Optional[float] = None
        self._started = False
        #: Multiplier on every sampled compute time; fault injection sets it
        #: above 1.0 to model a straggling worker (GC pause, thermal
        #: throttling, a slow replacement GPU) and restores 1.0 afterwards.
        self.compute_scale = 1.0
        #: How many times :meth:`restart` killed this job mid-iteration.
        self.restarts = 0
        # Monotone generation counter; every scheduled callback captures the
        # current epoch and becomes a no-op if a restart bumped it since,
        # so a kill cleanly cancels the in-flight iteration's future.
        self._epoch = 0
        sender.on_all_acked = self._on_comm_complete

    def start(self) -> None:
        """Schedule the first iteration at the job's start offset."""
        if self._started:
            raise RuntimeError(f"{self.job.name}: app already started")
        self._started = True
        self._schedule_epoch(self.job.start_offset, self._begin_comm)

    def restart(self, delay: float = 0.0) -> None:
        """Kill the job mid-iteration and start a fresh one after ``delay``.

        The in-flight iteration is discarded — it never reaches
        :attr:`iterations` — the transport abandons its unsent/unacked data
        (:meth:`~repro.tcp.base.TcpSender.abort_transfer`, which also resets
        MLTCP's ``bytes_sent``), and after ``delay`` seconds of downtime the
        job begins a brand-new communication phase, exactly like a restarted
        training worker resuming from its last checkpoint.
        """
        if delay < 0:
            raise ValueError(f"{self.job.name}: delay must be non-negative, got {delay!r}")
        if not self._started:
            raise RuntimeError(f"{self.job.name}: cannot restart an app that never started")
        self._epoch += 1
        self.restarts += 1
        self.sender.abort_transfer()
        self._comm_start = None
        self._schedule_epoch(delay, self._begin_comm)

    @property
    def completed(self) -> int:
        """Iterations fully completed (comm + compute)."""
        return len(self.iterations)

    def iteration_times(self) -> np.ndarray:
        """Durations of completed iterations, in order."""
        return np.array([it.duration for it in self.iterations])

    def comm_times(self) -> np.ndarray:
        """Communication-phase durations of completed iterations."""
        return np.array([it.comm_duration for it in self.iterations])

    # -- internals ----------------------------------------------------------

    def _schedule_epoch(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` unless a restart invalidates it first."""
        epoch = self._epoch

        def guarded() -> None:
            if self._epoch == epoch:
                callback()

        self.sim.schedule(delay, guarded)

    def _begin_comm(self) -> None:
        self._comm_start = self.sim.now
        self.sender.send_bytes(self.job.comm_bytes)

    def _on_comm_complete(self) -> None:
        comm_end = self.sim.now
        compute = self.compute_scale * self.job.sample_compute_time(self._rng)
        self._schedule_epoch(compute, lambda: self._finish_iteration(comm_end))

    def _finish_iteration(self, comm_end: float) -> None:
        assert self._comm_start is not None
        self.iterations.append(
            AppIteration(
                index=self._index,
                comm_start=self._comm_start,
                comm_end=comm_end,
                iteration_end=self.sim.now,
            )
        )
        self._index += 1
        if self.max_iterations is not None and self._index >= self.max_iterations:
            return
        self._begin_comm()


class MultiFlowTrainingApp:
    """A training job whose collective is striped over several flows.

    Real NCCL jobs open multiple TCP sockets per peer; the paper's kernel
    module keeps Algorithm 1 state *per flow*, each normalizing by its own
    per-flow share of TOTAL_BYTES.  This app splits every iteration's volume
    evenly over its senders and begins the computation phase only when every
    stripe has been acknowledged — the collective's barrier semantics.
    """

    def __init__(
        self,
        sim: Simulator,
        senders: list[SenderLike],
        job: JobSpec,
        max_iterations: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not senders:
            raise ValueError(f"{job.name}: need at least one sender")
        if max_iterations is not None and max_iterations < 1:
            raise ValueError(f"max_iterations must be positive, got {max_iterations!r}")
        self.sim = sim
        self.senders = list(senders)
        self.job = job
        self.max_iterations = max_iterations
        self._rng = rng
        self.iterations: list[AppIteration] = []
        self._index = 0
        self._comm_start: Optional[float] = None
        self._pending = 0
        self._started = False
        #: Straggler hook, as on :class:`TrainingApp`.
        self.compute_scale = 1.0
        for i, sender in enumerate(self.senders):
            sender.on_all_acked = lambda i=i: self._on_stripe_complete()

    @property
    def stripe_bytes(self) -> int:
        """Bytes each flow carries per iteration (last stripe rounds up)."""
        return -(-self.job.comm_bytes // len(self.senders))

    @property
    def completed(self) -> int:
        """Iterations fully completed (comm + compute)."""
        return len(self.iterations)

    def iteration_times(self) -> np.ndarray:
        """Durations of completed iterations, in order."""
        return np.array([it.duration for it in self.iterations])

    def start(self) -> None:
        """Schedule the first iteration at the job's start offset."""
        if self._started:
            raise RuntimeError(f"{self.job.name}: app already started")
        self._started = True
        self.sim.schedule(self.job.start_offset, self._begin_comm)

    # -- internals ----------------------------------------------------------

    def _begin_comm(self) -> None:
        self._comm_start = self.sim.now
        self._pending = len(self.senders)
        for sender in self.senders:
            sender.send_bytes(self.stripe_bytes)

    def _on_stripe_complete(self) -> None:
        self._pending -= 1
        if self._pending > 0:
            return
        comm_end = self.sim.now
        compute = self.compute_scale * self.job.sample_compute_time(self._rng)
        self.sim.schedule(compute, lambda: self._finish_iteration(comm_end))

    def _finish_iteration(self, comm_end: float) -> None:
        assert self._comm_start is not None
        self.iterations.append(
            AppIteration(
                index=self._index,
                comm_start=self._comm_start,
                comm_end=comm_end,
                iteration_end=self.sim.now,
            )
        )
        self._index += 1
        if self.max_iterations is not None and self._index >= self.max_iterations:
            return
        self._begin_comm()


class RequestApp:
    """Latency-sensitive request traffic: fixed-size transfers at intervals.

    Models the RPC/query traffic the paper's §5 wants to safeguard next to
    ML bulk flows.  Every ``interval`` seconds (optionally exponentially
    distributed) the app sends ``request_bytes`` and records the flow
    completion time.  Back-to-back requests are serialized: a new request
    waits until the previous one is acknowledged.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: SenderLike,
        request_bytes: int,
        interval: float,
        max_requests: Optional[int] = None,
        poisson: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if request_bytes <= 0:
            raise ValueError(f"request_bytes must be positive, got {request_bytes!r}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        if max_requests is not None and max_requests < 1:
            raise ValueError(f"max_requests must be positive, got {max_requests!r}")
        if poisson and rng is None:
            rng = np.random.default_rng(0)
        self.sim = sim
        self.sender = sender
        self.request_bytes = request_bytes
        self.interval = interval
        self.max_requests = max_requests
        self.poisson = poisson
        self._rng = rng
        self.completion_times: list[float] = []
        self._sent = 0
        self._request_start: Optional[float] = None
        self._started = False
        sender.on_all_acked = self._on_request_complete

    def start(self) -> None:
        """Schedule the first request."""
        if self._started:
            raise RuntimeError("request app already started")
        self._started = True
        self.sim.schedule(self._next_gap(), self._issue)

    @property
    def completed(self) -> int:
        """Requests completed so far."""
        return len(self.completion_times)

    def fct(self) -> np.ndarray:
        """Flow completion times of finished requests, in order."""
        return np.array(self.completion_times)

    # -- internals ----------------------------------------------------------

    def _next_gap(self) -> float:
        if self.poisson:
            assert self._rng is not None
            return float(self._rng.exponential(self.interval))
        return self.interval

    def _issue(self) -> None:
        if self.max_requests is not None and self._sent >= self.max_requests:
            return
        if self._request_start is not None:
            # Previous request still in flight: try again shortly.
            self.sim.schedule(self.interval / 4, self._issue)
            return
        self._sent += 1
        self._request_start = self.sim.now
        self.sender.send_bytes(self.request_bytes)

    def _on_request_complete(self) -> None:
        assert self._request_start is not None
        self.completion_times.append(self.sim.now - self._request_start)
        self._request_start = None
        if self.max_requests is None or self._sent < self.max_requests:
            self.sim.schedule(self._next_gap(), self._issue)

"""Packet model for the discrete-event simulator.

Segments carry byte-counted sequence numbers like real TCP, but every data
segment is exactly one MSS so that the congestion window can be expressed in
packets ("Following Linux's implementation … the congestion window (cwnd) is
expressed in packets", paper §3.1).  ACKs are pure (no piggybacked data).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Packet", "DATA_HEADER_BYTES", "ACK_SIZE_BYTES"]

#: TCP/IP header overhead carried by every data segment.
DATA_HEADER_BYTES = 40
#: Size of a pure ACK on the wire.
ACK_SIZE_BYTES = 40

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One packet on the wire (data segment or pure ACK)."""

    flow_id: str
    src: str
    dst: str
    is_ack: bool
    #: Data: sequence number of this segment (segment index, not bytes).
    #: ACK: cumulative acknowledgement (next expected segment index).
    seq: int
    #: Payload bytes (0 for ACKs).
    payload_bytes: int
    #: Simulation time the *original* transmission of this segment left the
    #: sender; used for RTT sampling (Karn's rule clears it on retransmit).
    sent_time: Optional[float] = None
    #: True when this is a retransmission (Karn: no RTT sample).
    retransmitted: bool = False
    #: ECN: sender marks capability; queue sets congestion-experienced.
    ecn_capable: bool = False
    ecn_ce: bool = False
    #: ECN echo bit on ACKs (receiver reflects CE back to the sender).
    ecn_echo: bool = False
    #: Scheduling priority for priority queues (e.g. pFabric: remaining
    #: bytes; lower value = higher priority).
    priority: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {self.payload_bytes!r}")
        if self.is_ack and self.payload_bytes != 0:
            raise ValueError("pure ACKs carry no payload")
        if not self.is_ack and self.payload_bytes == 0:
            raise ValueError("data segments must carry payload")
        if self.seq < 0:
            raise ValueError(f"seq must be non-negative, got {self.seq!r}")

    @property
    def size_bytes(self) -> int:
        """Wire size including headers."""
        if self.is_ack:
            return ACK_SIZE_BYTES
        return self.payload_bytes + DATA_HEADER_BYTES

    @property
    def size_bits(self) -> int:
        """Wire size in bits."""
        return 8 * self.size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (
            f"<{kind} {self.flow_id} {self.src}->{self.dst} seq={self.seq} "
            f"{self.payload_bytes}B>"
        )

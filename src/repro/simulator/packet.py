"""Packet model for the discrete-event simulator.

Segments carry byte-counted sequence numbers like real TCP, but every data
segment is exactly one MSS so that the congestion window can be expressed in
packets ("Following Linux's implementation … the congestion window (cwnd) is
expressed in packets", paper §3.1).  ACKs are pure (no piggybacked data).

Performance notes (docs/PERFORMANCE.md): :class:`Packet` is a ``__slots__``
class, not a dataclass — packet construction sits directly on the
per-segment hot path, and slots cut both allocation cost and attribute
access latency.  ``size_bytes``/``size_bits`` are precomputed at
construction instead of being recomputed properties.  :class:`PacketPool`
is a free-list recycler for the transport layer: senders/receivers acquire
packets from :data:`DEFAULT_POOL` and the consumption points (transport
``receive``, link drop branches) release them.  Only pool-acquired packets
are ever recycled — directly constructed packets (tests, ad-hoc traffic)
pass through ``release`` untouched, so holding a reference to one is
always safe.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..core.units import bits_from_bytes

__all__ = [
    "Packet",
    "PacketPool",
    "DEFAULT_POOL",
    "DATA_HEADER_BYTES",
    "ACK_SIZE_BYTES",
]

#: TCP/IP header overhead carried by every data segment.
DATA_HEADER_BYTES = 40
#: Size of a pure ACK on the wire.
ACK_SIZE_BYTES = 40

_packet_ids = itertools.count()


class Packet:
    """One packet on the wire (data segment or pure ACK)."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "is_ack",
        "seq",
        "payload_bytes",
        "sent_time",
        "retransmitted",
        "ecn_capable",
        "ecn_ce",
        "ecn_echo",
        "priority",
        "uid",
        "size_bytes",
        "size_bits",
        "_pooled",
    )

    def __init__(
        self,
        flow_id: str,
        src: str,
        dst: str,
        is_ack: bool,
        #: Data: sequence number of this segment (segment index, not bytes).
        #: ACK: cumulative acknowledgement (next expected segment index).
        seq: int,
        #: Payload bytes (0 for ACKs).
        payload_bytes: int,
        #: Simulation time the *original* transmission of this segment left
        #: the sender; used for RTT sampling (Karn's rule clears it on
        #: retransmit).
        sent_time: Optional[float] = None,
        #: True when this is a retransmission (Karn: no RTT sample).
        retransmitted: bool = False,
        #: ECN: sender marks capability; queue sets congestion-experienced.
        ecn_capable: bool = False,
        ecn_ce: bool = False,
        #: ECN echo bit on ACKs (receiver reflects CE back to the sender).
        ecn_echo: bool = False,
        #: Scheduling priority for priority queues (e.g. pFabric: remaining
        #: bytes; lower value = higher priority).
        priority: float = 0.0,
    ) -> None:
        if payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be non-negative, got {payload_bytes!r}"
            )
        if is_ack and payload_bytes != 0:
            raise ValueError("pure ACKs carry no payload")
        if not is_ack and payload_bytes == 0:
            raise ValueError("data segments must carry payload")
        if seq < 0:
            raise ValueError(f"seq must be non-negative, got {seq!r}")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.is_ack = is_ack
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.sent_time = sent_time
        self.retransmitted = retransmitted
        self.ecn_capable = ecn_capable
        self.ecn_ce = ecn_ce
        self.ecn_echo = ecn_echo
        self.priority = priority
        self.uid = next(_packet_ids)
        #: Wire size including headers (bytes / bits).
        self.size_bytes = ACK_SIZE_BYTES if is_ack else payload_bytes + DATA_HEADER_BYTES
        self.size_bits = bits_from_bytes(self.size_bytes)
        self._pooled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (
            f"<{kind} {self.flow_id} {self.src}->{self.dst} seq={self.seq} "
            f"{self.payload_bytes}B>"
        )


class PacketPool:
    """Free-list recycler for transport-generated packets.

    ``acquire`` re-initializes a recycled :class:`Packet` in place (or
    constructs a fresh one when the free list is empty) and tags it as
    pool-owned; ``release`` returns it to the free list.  Field validation
    is skipped on the recycle path — the transport layer constructs
    packets that are valid by construction, and acquire/release sit on the
    per-segment hot path.

    Safety rules:

    * ``release`` is a no-op for packets that did not come from ``acquire``
      (so test-constructed packets are never recycled under a held
      reference) and for double releases (the pooled flag clears on the
      first).
    * A released packet's fields stay readable until the pool hands it out
      again; callers must simply not *retain* packets past the consumption
      point that released them.
    """

    __slots__ = ("_free", "max_free")

    def __init__(self, max_free: int = 4096) -> None:
        if max_free < 0:
            raise ValueError(f"max_free must be non-negative, got {max_free!r}")
        self._free: list[Packet] = []
        self.max_free = max_free

    def __len__(self) -> int:
        """Packets currently parked on the free list."""
        return len(self._free)

    def acquire(
        self,
        flow_id: str,
        src: str,
        dst: str,
        is_ack: bool,
        seq: int,
        payload_bytes: int,
        sent_time: Optional[float] = None,
        retransmitted: bool = False,
        ecn_capable: bool = False,
        ecn_echo: bool = False,
        priority: float = 0.0,
    ) -> Packet:
        """A ready-to-send packet, recycled when possible."""
        free = self._free
        if not free:
            packet = Packet(
                flow_id,
                src,
                dst,
                is_ack,
                seq,
                payload_bytes,
                sent_time=sent_time,
                retransmitted=retransmitted,
                ecn_capable=ecn_capable,
                ecn_echo=ecn_echo,
                priority=priority,
            )
            packet._pooled = True
            return packet
        packet = free.pop()
        packet.flow_id = flow_id
        packet.src = src
        packet.dst = dst
        packet.is_ack = is_ack
        packet.seq = seq
        packet.payload_bytes = payload_bytes
        packet.sent_time = sent_time
        packet.retransmitted = retransmitted
        packet.ecn_capable = ecn_capable
        packet.ecn_ce = False
        packet.ecn_echo = ecn_echo
        packet.priority = priority
        packet.uid = next(_packet_ids)
        size = ACK_SIZE_BYTES if is_ack else payload_bytes + DATA_HEADER_BYTES
        packet.size_bytes = size
        packet.size_bits = bits_from_bytes(size)
        packet._pooled = True
        return packet

    def release(self, packet: Packet) -> None:
        """Return a pool-acquired packet to the free list (no-op otherwise)."""
        if packet._pooled:
            packet._pooled = False
            if len(self._free) < self.max_free:
                self._free.append(packet)


#: Process-wide pool shared by the transport layer.  The simulator is
#: single-threaded per process (the experiment runner parallelizes with
#: *processes*), so a module-level free list is safe.
DEFAULT_POOL = PacketPool()

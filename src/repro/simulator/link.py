"""Point-to-point links: serialization, propagation, queueing, loss.

A :class:`Link` is unidirectional.  Packets handed to :meth:`Link.send` are
buffered in the link's queue discipline while the transmitter is busy; each
transmission takes ``size_bits / rate_bps`` seconds, after which the packet
propagates for ``delay`` seconds and is delivered to the receiving node.

``random_loss`` drops packets Bernoulli-independently before queueing — used
by the §5 fairness experiment, which needs a controlled loss probability to
measure the throughput-vs-loss response of Reno and MLTCP-Reno.

Fault-injection hooks (driven by :mod:`repro.faults.packet`): a link can be
taken :meth:`down <set_down>` and brought back :meth:`up <set_up>` (a flap),
its rate scaled by :meth:`set_rate_factor` (partial degradation), an extra
Bernoulli :meth:`fault loss <set_fault_loss>` layered on top of
``random_loss`` (a loss burst), and an :meth:`ECN storm <set_ecn_storm>`
that CE-marks every ECN-capable packet it serializes.  All four revert
cleanly, so a schedule of faults replays deterministically.

Performance notes (docs/PERFORMANCE.md): for FIFO disciplines the link
*plans* each packet's serialization at enqueue time — start and finish
instants are computed by accumulating transmission times exactly as the
old per-packet event chain did (bit-identical floats), and a single
delivery event per packet is scheduled up front.  That halves the event
count of the old design (transmit-complete + delivery per packet) for
back-to-back bursts.  Planned packets stay in the queue buffer until
their start instant passes ("settling", done lazily at the next send or
fault hook), so queue-length observables — DCTCP's marking threshold,
drop-tail capacity — see exactly the occupancy the old design exposed.
Fault hooks settle, cancel the not-yet-started deliveries (O(1) each via
``Simulator.cancel``), and re-plan under the new link state, which
reproduces the old pop-time semantics for rate changes and ECN storms.
Priority queues (pFabric) reorder on arrival, so they keep the legacy
per-packet event chain.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

import numpy as np

from .engine import EventEntry, Simulator
from .packet import DEFAULT_POOL, Packet
from .queues import DropTailQueue, QueueDiscipline

__all__ = ["Link"]

# Planned-transmission record:
# [packet, start, finish, size_bits, delivery_entry, storm_counted, storm_flipped]
_PlanEntry = List[object]


class Link:
    """Unidirectional link with a rate, propagation delay and queue."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay: float,
        queue: Optional[QueueDiscipline] = None,
        deliver: Optional[Callable[[Packet], None]] = None,
        random_loss: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"{name}: rate_bps must be positive, got {rate_bps!r}")
        if delay < 0:
            raise ValueError(f"{name}: delay must be non-negative, got {delay!r}")
        if not 0.0 <= random_loss < 1.0:
            raise ValueError(f"{name}: random_loss must be in [0, 1), got {random_loss!r}")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue(capacity_packets=100)
        self._deliver = deliver
        self.random_loss = random_loss
        self._loss_rng = loss_rng if loss_rng is not None else np.random.default_rng(0)
        self._busy = False
        # Burst planning (FIFO disciplines only; see module docstring).
        self._fifo = isinstance(self.queue, DropTailQueue)
        self._plan: deque[_PlanEntry] = deque()
        #: Finish instant of the last planned transmission.
        self._wire_free_at = 0.0
        #: Finish instant of the last *settled* (started) transmission.
        self._settled_until = 0.0
        self._burst_entry: Optional[EventEntry] = None
        # Fault-injection state (see repro.faults.packet).
        self.up = True
        self.rate_factor = 1.0
        self.fault_loss = 0.0
        self.ecn_storm = False
        self._fault_rng: Optional[np.random.Generator] = None
        # Counters for utilization/telemetry (settled portions; the public
        # values are properties that add the in-plan, already-started part).
        self._bits_settled = 0
        self._packets_settled = 0
        self._storm_settled = 0
        self.random_drops = 0
        self.fault_drops = 0

    def connect(self, deliver: Callable[[Packet], None]) -> None:
        """Attach the receiving node's packet handler."""
        self._deliver = deliver

    def send(self, packet: Packet) -> None:
        """Offer a packet to the link (may be queued or dropped)."""
        if self._deliver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")
        if not self.up:
            # A severed link carries nothing; arrivals are lost, not queued,
            # so the transports see loss and recover once the link is back.
            self.fault_drops += 1
            DEFAULT_POOL.release(packet)
            return
        if self.random_loss > 0.0 and self._loss_rng.random() < self.random_loss:
            self.random_drops += 1
            DEFAULT_POOL.release(packet)
            return
        if self.fault_loss > 0.0 and self._require_fault_rng().random() < self.fault_loss:
            self.fault_drops += 1
            DEFAULT_POOL.release(packet)
            return
        if self._fifo:
            if self._plan:
                self._settle()
            if not self.queue.push(packet):
                DEFAULT_POOL.release(packet)  # tail drop, counted by the queue
                return
            self._plan_packet(packet)
            if self._burst_entry is None:
                self._burst_entry = self.sim.schedule_at(
                    self._wire_free_at, self._on_burst_end
                )
            return
        if not self.queue.push(packet):
            return  # tail drop, counted by the queue
        if not self._busy:
            self._transmit_next()

    # -- fault-injection hooks --------------------------------------------

    def set_down(self) -> None:
        """Sever the link: arrivals are dropped, the queue drains no further.

        A transmission already serializing completes (the cut happens at a
        packet boundary); everything buffered waits for :meth:`set_up`.
        """
        if not self.up:
            return
        self.up = False
        if self._fifo:
            self._settle()
            self._unplan_unstarted()

    def set_up(self) -> None:
        """Restore a severed link and resume draining its queue."""
        if self.up:
            return
        self.up = True
        if self._fifo:
            self._replan_buffer()
        elif not self._busy:
            self._transmit_next()

    def set_rate_factor(self, factor: float) -> None:
        """Scale the serialization rate (1.0 = healthy, 0.5 = half rate).

        Applies to transmissions that have not started yet; a packet
        already serializing keeps its old rate (same as the pre-planning
        design, where the rate was read at transmission start).
        """
        if factor <= 0:
            raise ValueError(
                f"{self.name}: rate factor must be positive, got {factor!r}"
            )
        # Identity check, not a numeric tolerance: re-planning on a no-op
        # factor write would only churn event sequence numbers.
        if factor == self.rate_factor:  # repro-lint: disable=FLT001
            return
        self.rate_factor = factor
        self._reschedule_unstarted()

    def set_fault_loss(self, probability: float, rng: Optional[np.random.Generator] = None) -> None:
        """Layer an extra Bernoulli drop probability on top of ``random_loss``."""
        if not 0.0 <= probability < 1.0:
            raise ValueError(
                f"{self.name}: fault loss must be in [0, 1), got {probability!r}"
            )
        self.fault_loss = probability
        if rng is not None:
            self._fault_rng = rng

    def set_ecn_storm(self, active: bool) -> None:
        """CE-mark every ECN-capable packet serialized while active."""
        active = bool(active)
        if active == self.ecn_storm:
            return
        self.ecn_storm = active
        self._reschedule_unstarted()

    def _require_fault_rng(self) -> np.random.Generator:
        if self._fault_rng is None:
            self._fault_rng = np.random.default_rng(0)
        return self._fault_rng

    # -- telemetry ---------------------------------------------------------

    @property
    def bits_sent(self) -> int:
        """Bits whose serialization has started (exact at any instant)."""
        total = self._bits_settled
        now = self.sim.now
        for entry in self._plan:
            if entry[1] <= now:  # type: ignore[operator]
                total += entry[3]  # type: ignore[operator]
            else:
                break
        return total

    @property
    def packets_sent(self) -> int:
        """Packets whose serialization has started."""
        total = self._packets_settled
        now = self.sim.now
        for entry in self._plan:
            if entry[1] <= now:  # type: ignore[operator]
                total += 1
            else:
                break
        return total

    @property
    def storm_marks(self) -> int:
        """ECN-storm CE marks applied to started transmissions."""
        total = self._storm_settled
        now = self.sim.now
        for entry in self._plan:
            if entry[1] <= now:  # type: ignore[operator]
                if entry[5]:
                    total += 1
            else:
                break
        return total

    @property
    def utilization_bits(self) -> int:
        """Total bits serialized onto the wire so far."""
        return self.bits_sent

    @property
    def offered_packets(self) -> int:
        """Packets offered to this link: accepted plus every drop class."""
        return (
            self.queue.enqueued
            + self.queue.drops
            + self.random_drops
            + self.fault_drops
        )

    def conservation_delta(self) -> int:
        """Accepted packets minus (dequeued + still buffered); zero when sane.

        Exact at any instant under lazy settling: a planned-but-started
        packet stays both buffered (in the queue) and unsettled (not yet in
        ``_packets_settled``), so it contributes to exactly one side of the
        identity.  Non-zero means a packet was lost or double-counted inside
        the link — the ``link-conservation`` guard
        (:func:`repro.guards.monitors.check_link_conservation`).
        """
        return self.queue.enqueued - (self._packets_settled + len(self.queue))

    def mean_rate_bps(self, elapsed: float) -> float:
        """Average throughput over ``elapsed`` seconds of simulation."""
        if elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed!r}")
        return self.bits_sent / elapsed

    # -- burst planning internals ------------------------------------------

    def _plan_packet(self, packet: Packet) -> None:
        """Schedule one packet's delivery; accumulate the wire timeline.

        ``start`` continues exactly where the previous transmission ends
        (the same float the old transmit-complete event carried), so every
        delivery instant matches the per-packet event chain bit for bit.
        """
        sim = self.sim
        start = self._wire_free_at
        now = sim.now
        if start < now:
            start = now
        size_bits = packet.size_bits
        finish = start + size_bits / (self.rate_bps * self.rate_factor)
        self._wire_free_at = finish
        storm_counted = False
        storm_flipped = False
        if self.ecn_storm and packet.ecn_capable:
            storm_counted = True
            if not packet.ecn_ce:
                packet.ecn_ce = True
                storm_flipped = True
        delivery = sim.schedule_at(
            finish + self.delay, lambda p=packet: self._deliver(p)  # type: ignore[misc]
        )
        self._plan.append(
            [packet, start, finish, size_bits, delivery, storm_counted, storm_flipped]
        )

    def _settle(self) -> None:
        """Pop packets whose serialization has started off the queue.

        Planned packets remain buffered until their start instant so
        queue-length observables (ECN threshold, drop-tail capacity) match
        the old pop-at-transmit design exactly.
        """
        plan = self._plan
        if not plan:
            return
        now = self.sim.now
        pop = self.queue.pop
        while plan and plan[0][1] <= now:  # type: ignore[operator]
            entry = plan.popleft()
            pop()
            self._bits_settled += entry[3]  # type: ignore[operator]
            self._packets_settled += 1
            if entry[5]:
                self._storm_settled += 1
            self._settled_until = entry[2]  # type: ignore[assignment]

    def _unplan_unstarted(self) -> None:
        """Drop every not-yet-started plan entry (after :meth:`_settle`).

        The packets stay buffered; their delivery events are cancelled and
        storm marks applied at plan time are rolled back, so a re-plan sees
        them exactly as the old design's queue did.
        """
        plan = self._plan
        cancel = self.sim.cancel
        while plan:
            entry = plan.pop()
            cancel(entry[4])  # type: ignore[arg-type]
            if entry[6]:
                entry[0].ecn_ce = False  # type: ignore[union-attr]
        self._wire_free_at = self._settled_until

    def _replan_buffer(self) -> None:
        """Plan every buffered packet afresh (after a fault transition)."""
        if not self.up:
            return
        assert isinstance(self.queue, DropTailQueue)
        for packet in self.queue.buffered():
            self._plan_packet(packet)
        if self._plan and self._burst_entry is None:
            self._burst_entry = self.sim.schedule_at(
                self._wire_free_at, self._on_burst_end
            )

    def _reschedule_unstarted(self) -> None:
        """Re-plan not-yet-started transmissions under new link state."""
        if not self._fifo:
            return
        self._settle()
        self._unplan_unstarted()
        self._replan_buffer()

    def _on_burst_end(self) -> None:
        """Housekeeping event at the planned end of the wire timeline:
        settles started packets so buffers and counters are exact at rest
        (between bursts and at the end of a run)."""
        self._burst_entry = None
        self._settle()
        if self._plan:
            self._burst_entry = self.sim.schedule_at(
                self._wire_free_at, self._on_burst_end
            )

    # -- legacy per-packet chain (non-FIFO disciplines) --------------------

    def _transmit_next(self) -> None:
        if not self.up:
            self._busy = False
            return
        packet = self.queue.pop()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        if self.ecn_storm and packet.ecn_capable:
            packet.ecn_ce = True
            self._storm_settled += 1
        tx_time = packet.size_bits / (self.rate_bps * self.rate_factor)
        self._bits_settled += packet.size_bits
        self._packets_settled += 1
        self.sim.schedule(tx_time, lambda p=packet: self._on_tx_complete(p))

    def _on_tx_complete(self, packet: Packet) -> None:
        assert self._deliver is not None
        self.sim.schedule(self.delay, lambda p=packet: self._deliver(p))
        self._transmit_next()

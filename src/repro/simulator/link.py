"""Point-to-point links: serialization, propagation, queueing, loss.

A :class:`Link` is unidirectional.  Packets handed to :meth:`Link.send` are
buffered in the link's queue discipline while the transmitter is busy; each
transmission takes ``size_bits / rate_bps`` seconds, after which the packet
propagates for ``delay`` seconds and is delivered to the receiving node.

``random_loss`` drops packets Bernoulli-independently before queueing — used
by the §5 fairness experiment, which needs a controlled loss probability to
measure the throughput-vs-loss response of Reno and MLTCP-Reno.

Fault-injection hooks (driven by :mod:`repro.faults.packet`): a link can be
taken :meth:`down <set_down>` and brought back :meth:`up <set_up>` (a flap),
its rate scaled by :meth:`set_rate_factor` (partial degradation), an extra
Bernoulli :meth:`fault loss <set_fault_loss>` layered on top of
``random_loss`` (a loss burst), and an :meth:`ECN storm <set_ecn_storm>`
that CE-marks every ECN-capable packet it serializes.  All four revert
cleanly, so a schedule of faults replays deterministically.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue, QueueDiscipline

__all__ = ["Link"]


class Link:
    """Unidirectional link with a rate, propagation delay and queue."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        delay: float,
        queue: Optional[QueueDiscipline] = None,
        deliver: Optional[Callable[[Packet], None]] = None,
        random_loss: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"{name}: rate_bps must be positive, got {rate_bps!r}")
        if delay < 0:
            raise ValueError(f"{name}: delay must be non-negative, got {delay!r}")
        if not 0.0 <= random_loss < 1.0:
            raise ValueError(f"{name}: random_loss must be in [0, 1), got {random_loss!r}")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue(capacity_packets=100)
        self._deliver = deliver
        self.random_loss = random_loss
        self._loss_rng = loss_rng if loss_rng is not None else np.random.default_rng(0)
        self._busy = False
        # Fault-injection state (see repro.faults.packet).
        self.up = True
        self.rate_factor = 1.0
        self.fault_loss = 0.0
        self.ecn_storm = False
        self._fault_rng: Optional[np.random.Generator] = None
        # Counters for utilization/telemetry.
        self.bits_sent = 0
        self.packets_sent = 0
        self.random_drops = 0
        self.fault_drops = 0
        self.storm_marks = 0

    def connect(self, deliver: Callable[[Packet], None]) -> None:
        """Attach the receiving node's packet handler."""
        self._deliver = deliver

    def send(self, packet: Packet) -> None:
        """Offer a packet to the link (may be queued or dropped)."""
        if self._deliver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")
        if not self.up:
            # A severed link carries nothing; arrivals are lost, not queued,
            # so the transports see loss and recover once the link is back.
            self.fault_drops += 1
            return
        if self.random_loss > 0.0 and self._loss_rng.random() < self.random_loss:
            self.random_drops += 1
            return
        if self.fault_loss > 0.0 and self._require_fault_rng().random() < self.fault_loss:
            self.fault_drops += 1
            return
        if not self.queue.push(packet):
            return  # tail drop, counted by the queue
        if not self._busy:
            self._transmit_next()

    # -- fault-injection hooks --------------------------------------------

    def set_down(self) -> None:
        """Sever the link: arrivals are dropped, the queue drains no further.

        A transmission already serializing completes (the cut happens at a
        packet boundary); everything buffered waits for :meth:`set_up`.
        """
        self.up = False

    def set_up(self) -> None:
        """Restore a severed link and resume draining its queue."""
        if self.up:
            return
        self.up = True
        if not self._busy:
            self._transmit_next()

    def set_rate_factor(self, factor: float) -> None:
        """Scale the serialization rate (1.0 = healthy, 0.5 = half rate)."""
        if factor <= 0:
            raise ValueError(
                f"{self.name}: rate factor must be positive, got {factor!r}"
            )
        self.rate_factor = factor

    def set_fault_loss(self, probability: float, rng: Optional[np.random.Generator] = None) -> None:
        """Layer an extra Bernoulli drop probability on top of ``random_loss``."""
        if not 0.0 <= probability < 1.0:
            raise ValueError(
                f"{self.name}: fault loss must be in [0, 1), got {probability!r}"
            )
        self.fault_loss = probability
        if rng is not None:
            self._fault_rng = rng

    def set_ecn_storm(self, active: bool) -> None:
        """CE-mark every ECN-capable packet serialized while active."""
        self.ecn_storm = bool(active)

    def _require_fault_rng(self) -> np.random.Generator:
        if self._fault_rng is None:
            self._fault_rng = np.random.default_rng(0)
        return self._fault_rng

    @property
    def utilization_bits(self) -> int:
        """Total bits serialized onto the wire so far."""
        return self.bits_sent

    def mean_rate_bps(self, elapsed: float) -> float:
        """Average throughput over ``elapsed`` seconds of simulation."""
        if elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed!r}")
        return self.bits_sent / elapsed

    # -- internals --------------------------------------------------------

    def _transmit_next(self) -> None:
        if not self.up:
            self._busy = False
            return
        packet = self.queue.pop()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        if self.ecn_storm and packet.ecn_capable:
            packet.ecn_ce = True
            self.storm_marks += 1
        tx_time = packet.size_bits / (self.rate_bps * self.rate_factor)
        self.bits_sent += packet.size_bits
        self.packets_sent += 1
        self.sim.schedule(tx_time, lambda p=packet: self._on_tx_complete(p))

    def _on_tx_complete(self, packet: Packet) -> None:
        assert self._deliver is not None
        self.sim.schedule(self.delay, lambda p=packet: self._deliver(p))
        self._transmit_next()

"""Packet-level discrete-event network simulator."""

from .app import (
    AppIteration,
    MultiFlowTrainingApp,
    RequestApp,
    SenderLike,
    TrainingApp,
)
from .engine import EventEntry, EventHandle, Simulator
from .link import Link
from .node import Host, Node, Switch
from .packet import ACK_SIZE_BYTES, DATA_HEADER_BYTES, Packet
from .queues import DropTailQueue, EcnQueue, PriorityQueue, QueueDiscipline
from .topology import Network, build_dumbbell, build_from_graph, build_leaf_spine

__all__ = [
    "Simulator",
    "EventHandle",
    "EventEntry",
    "Packet",
    "DATA_HEADER_BYTES",
    "ACK_SIZE_BYTES",
    "Link",
    "QueueDiscipline",
    "DropTailQueue",
    "EcnQueue",
    "PriorityQueue",
    "Node",
    "Host",
    "Switch",
    "Network",
    "build_dumbbell",
    "build_leaf_spine",
    "build_from_graph",
    "TrainingApp",
    "MultiFlowTrainingApp",
    "RequestApp",
    "AppIteration",
    "SenderLike",
]

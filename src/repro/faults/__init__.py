"""Fault injection: declarative network/infrastructure fault schedules.

MLTCP's headline robustness claim is that interleaving *re-converges*
without a controller when conditions shift (paper §4): a centralized
scheduler must recompute its schedule on every perturbation, while MLTCP's
gradient-descent dynamics simply resume from the perturbed state.  This
package supplies the perturbations: a seeded, declarative
:class:`FaultSchedule` (link down/up, bandwidth degradation, burst loss,
ECN mark storms, compute stragglers, job kill/restart) plus injectors that
replay the *same* schedule in both simulation substrates —
:func:`install_packet_faults` for the packet-level simulator and
:class:`FluidFaultState` for the fluid one (``run_fluid(..., faults=...)``).

See docs/FAULTS.md for the fault model, the schedule file format and the
recovery metrics built on top of it.
"""

from .fluid import FluidFaultState
from .packet import InjectionLog, install_packet_faults
from .schedule import FAULT_KINDS, FaultEvent, FaultSchedule

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FluidFaultState",
    "InjectionLog",
    "install_packet_faults",
]

"""Fault injection: declarative network/infrastructure fault schedules.

MLTCP's headline robustness claim is that interleaving *re-converges*
without a controller when conditions shift (paper §4): a centralized
scheduler must recompute its schedule on every perturbation, while MLTCP's
gradient-descent dynamics simply resume from the perturbed state.  This
package supplies the perturbations: a seeded, declarative
:class:`FaultSchedule` (link down/up, bandwidth degradation, burst loss,
ECN mark storms, compute stragglers, job kill/restart) plus injectors that
replay the *same* schedule in both simulation substrates —
:func:`install_packet_faults` for the packet-level simulator and
:class:`FluidFaultState` for the fluid one (``run_fluid(..., faults=...)``).

Fabric-level chaos rides on the same schedule layer: fabric fault kinds
(:data:`FABRIC_KINDS` — spine/uplink failures, rack partitions, ECMP
re-hashes) replay through a shared :class:`FabricRoutingState` that
recomputes ECMP over the surviving spines identically in both substrates,
and :class:`ChaosCampaign` samples whole randomized schedules from a
declarative :class:`ChaosBudget`, bit-reproducibly.

See docs/FAULTS.md for the fault model, the schedule file format and the
recovery metrics built on top of it.
"""

from .chaos import ChaosBudget, ChaosCampaign, generate_campaign
from .fluid import FluidFaultState
from .packet import InjectionLog, install_packet_faults
from .routing import FabricRoutingState, rehashed_seed
from .schedule import FABRIC_KINDS, FAULT_KINDS, FaultEvent, FaultSchedule

__all__ = [
    "FABRIC_KINDS",
    "FAULT_KINDS",
    "ChaosBudget",
    "ChaosCampaign",
    "FabricRoutingState",
    "FaultEvent",
    "FaultSchedule",
    "FluidFaultState",
    "InjectionLog",
    "generate_campaign",
    "install_packet_faults",
    "rehashed_seed",
]

"""Replaying a fault schedule inside the packet-level simulator.

:func:`install_packet_faults` validates a
:class:`~repro.faults.schedule.FaultSchedule` against the assembled
topology/apps and schedules one engine event per fault transition: the
strike at ``event.time`` and (for faults with a duration) the reversion at
``event.time + duration``.  Everything runs through the hooks the substrate
already exposes — :class:`repro.simulator.link.Link`'s down/rate/loss/storm
controls and :meth:`repro.simulator.app.TrainingApp.restart` — so fault
replay composes with any congestion control, queue discipline or topology.

Burst-loss coin flips draw from a generator seeded by
``FaultSchedule.seed``, independent of the links' own ``random_loss``
streams, so adding a fault schedule never perturbs the baseline noise
realization: the same run with and without faults differs only where the
faults act.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..simulator.app import TrainingApp
from ..simulator.engine import Simulator
from ..simulator.link import Link
from ..simulator.topology import Network
from .schedule import FaultEvent, FaultSchedule

__all__ = ["InjectionLog", "install_packet_faults", "DEFAULT_BOTTLENECK"]

#: Link targeted when an event names none: the dumbbell's data direction.
DEFAULT_BOTTLENECK = "sw_l->sw_r"


@dataclass
class InjectionLog:
    """What the injector actually did, for telemetry's degradations section.

    One entry per applied transition: ``(sim_time, description)``.  The
    harness copies these into the run-report so a report reader can see
    every fault that fired without reloading the schedule.
    """

    entries: list[tuple[float, str]] = field(default_factory=list)

    def record(self, time: float, description: str) -> None:
        """Append one applied transition."""
        self.entries.append((time, description))

    def descriptions(self) -> list[str]:
        """The log as human-readable lines, in application order."""
        return [f"t={time:g}s: {text}" for time, text in self.entries]

    def context_for(self, time: float) -> Optional[str]:
        """The most recent applied transition at or before ``time``.

        Lets a guard-summary reader correlate an
        :class:`repro.guards.InvariantViolation` (which carries its
        detection time) with the fault that plausibly provoked it
        (docs/ROBUSTNESS.md).  ``None`` when no transition had fired yet.
        """
        latest: Optional[str] = None
        for applied_at, text in self.entries:
            if applied_at > time:
                break
            latest = f"t={applied_at:g}s: {text}"
        return latest


def _link_names(network: Network) -> dict[str, Link]:
    return {f"{src}->{dst}": link for (src, dst), link in network.links.items()}


def install_packet_faults(
    sim: Simulator,
    network: Network,
    schedule: FaultSchedule,
    apps: Optional[Mapping[str, TrainingApp]] = None,
    log: Optional[InjectionLog] = None,
) -> InjectionLog:
    """Arm every fault in ``schedule`` on an assembled packet testbed.

    Must be called before ``sim.run``.  Link events default to the
    :data:`DEFAULT_BOTTLENECK`; job events require ``apps`` (the mapping
    :func:`repro.harness.packetlab.run_packet_jobs` builds).  The schedule
    is re-validated against the *actual* link and job names so a schedule
    written for one topology fails fast on another.  Returns the
    :class:`InjectionLog` that the armed events will append to as the
    simulation replays them.
    """
    links = _link_names(network)
    job_names = set(apps) if apps is not None else None
    schedule.validate(link_names=links, job_names=job_names)
    log = log if log is not None else InjectionLog()
    loss_rng = np.random.default_rng(schedule.seed)

    for event in schedule.sorted_events():
        if event.kind in ("straggler", "job_restart"):
            if apps is None:
                raise ValueError(
                    f"fault {event.describe()} targets a job but no apps "
                    "mapping was provided to install_packet_faults"
                )
            app = apps[event.job]
            _arm_job_fault(sim, event, app, log)
        else:
            link_name = event.link if event.link is not None else DEFAULT_BOTTLENECK
            if link_name not in links:
                raise ValueError(
                    f"fault {event.describe()} targets link {link_name!r} "
                    f"which does not exist; available: {sorted(links)}"
                )
            _arm_link_fault(sim, event, links[link_name], loss_rng, log)
    return log


def _arm_link_fault(
    sim: Simulator,
    event: FaultEvent,
    link: Link,
    loss_rng: np.random.Generator,
    log: InjectionLog,
) -> None:
    def strike() -> None:
        log.record(sim.now, event.describe())
        if event.kind == "link_down":
            link.set_down()
        elif event.kind == "bandwidth":
            link.set_rate_factor(event.factor)
        elif event.kind == "loss_burst":
            link.set_fault_loss(event.loss, rng=loss_rng)
        elif event.kind == "ecn_storm":
            link.set_ecn_storm(True)

    def revert() -> None:
        log.record(sim.now, f"{event.kind} on {link.name} reverted")
        if event.kind == "link_down":
            link.set_up()
        elif event.kind == "bandwidth":
            link.set_rate_factor(1.0)
        elif event.kind == "loss_burst":
            link.set_fault_loss(0.0)
        elif event.kind == "ecn_storm":
            link.set_ecn_storm(False)

    sim.schedule_at(event.time, strike)
    sim.schedule_at(event.end_time, revert)


def _arm_job_fault(
    sim: Simulator, event: FaultEvent, app: TrainingApp, log: InjectionLog
) -> None:
    if event.kind == "straggler":

        def strike() -> None:
            log.record(sim.now, event.describe())
            app.compute_scale = event.factor

        def revert() -> None:
            log.record(sim.now, f"straggler on {event.job} reverted")
            app.compute_scale = 1.0

        sim.schedule_at(event.time, strike)
        sim.schedule_at(event.end_time, revert)
    else:  # job_restart

        def kill() -> None:
            log.record(sim.now, event.describe())
            app.restart(delay=event.restart_delay)

        sim.schedule_at(event.time, kill)

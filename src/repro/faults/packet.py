"""Replaying a fault schedule inside the packet-level simulator.

:func:`install_packet_faults` validates a
:class:`~repro.faults.schedule.FaultSchedule` against the assembled
topology/apps and schedules one engine event per fault transition: the
strike at ``event.time`` and (for faults with a duration) the reversion at
``event.time + duration``.  Everything runs through the hooks the substrate
already exposes — :class:`repro.simulator.link.Link`'s down/rate/loss/storm
controls and :meth:`repro.simulator.app.TrainingApp.restart` — so fault
replay composes with any congestion control, queue discipline or topology.

Burst-loss coin flips draw from a generator seeded by
``FaultSchedule.seed``, independent of the links' own ``random_loss``
streams, so adding a fault schedule never perturbs the baseline noise
realization: the same run with and without faults differs only where the
faults act.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from ..simulator.app import TrainingApp
from ..simulator.engine import Simulator
from ..simulator.link import Link
from ..simulator.topology import Network
from .routing import FabricRoutingState
from .schedule import FABRIC_KINDS, FaultEvent, FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..guards import GuardRail
    from ..workloads.placement import FabricSpec

__all__ = ["InjectionLog", "install_packet_faults", "DEFAULT_BOTTLENECK"]

#: Link targeted when an event names none: the dumbbell's data direction.
DEFAULT_BOTTLENECK = "sw_l->sw_r"


@dataclass
class InjectionLog:
    """What the injector actually did, for telemetry's degradations section.

    One entry per applied transition: ``(sim_time, description)``.  The
    harness copies these into the run-report so a report reader can see
    every fault that fired without reloading the schedule.
    """

    entries: list[tuple[float, str]] = field(default_factory=list)

    def record(self, time: float, description: str) -> None:
        """Append one applied transition."""
        self.entries.append((time, description))

    def descriptions(self) -> list[str]:
        """The log as human-readable lines, in application order."""
        return [f"t={time:g}s: {text}" for time, text in self.entries]

    def context_for(self, time: float) -> Optional[str]:
        """The most recent applied transition at or before ``time``.

        Lets a guard-summary reader correlate an
        :class:`repro.guards.InvariantViolation` (which carries its
        detection time) with the fault that plausibly provoked it
        (docs/ROBUSTNESS.md).  ``None`` when no transition had fired yet.
        """
        latest: Optional[str] = None
        for applied_at, text in self.entries:
            if applied_at > time:
                break
            latest = f"t={applied_at:g}s: {text}"
        return latest


def _link_names(network: Network) -> dict[str, Link]:
    return {f"{src}->{dst}": link for (src, dst), link in network.links.items()}


def install_packet_faults(
    sim: Simulator,
    network: Network,
    schedule: FaultSchedule,
    apps: Optional[Mapping[str, TrainingApp]] = None,
    log: Optional[InjectionLog] = None,
    fabric: Optional["FabricSpec"] = None,
    guards: Optional["GuardRail"] = None,
) -> InjectionLog:
    """Arm every fault in ``schedule`` on an assembled packet testbed.

    Must be called before ``sim.run``.  Link events default to the
    :data:`DEFAULT_BOTTLENECK`; job events require ``apps`` (the mapping
    :func:`repro.harness.packetlab.run_packet_jobs` builds).  The schedule
    is re-validated against the *actual* link and job names so a schedule
    written for one topology fails fast on another.  Returns the
    :class:`InjectionLog` that the armed events will append to as the
    simulation replays them.

    Fabric faults (:data:`~repro.faults.schedule.FABRIC_KINDS`) require
    ``fabric`` — the :class:`~repro.workloads.placement.FabricSpec` the
    network was built from.  On each strike/revert the shared
    :class:`~repro.faults.routing.FabricRoutingState` recomputes ECMP over
    the surviving spines, the affected links are toggled down/up, and every
    changed host-pair route is reinstalled in ``network.routes`` — so
    in-flight flows reroute deterministically onto the same links the fluid
    substrate picks.  Pairs with *no* surviving path keep their stale route
    and blackhole at the severed link until repair.  When ``guards`` is
    given, the route-liveness and reroute-conservation monitors run after
    every fabric transition.
    """
    links = _link_names(network)
    job_names = set(apps) if apps is not None else None
    schedule.validate(link_names=links, job_names=job_names, fabric=fabric)
    log = log if log is not None else InjectionLog()
    loss_rng = np.random.default_rng(schedule.seed)

    fabric_events = [e for e in schedule.sorted_events() if e.kind in FABRIC_KINDS]
    routing: Optional[FabricRoutingState] = None
    if fabric_events:
        if fabric is None:
            raise ValueError(
                f"fault {fabric_events[0].describe()} is a fabric fault; "
                "pass fabric=FabricSpec(...) to install_packet_faults so "
                "routing can be recomputed over the surviving spines"
            )
        routing = FabricRoutingState(fabric)
        reroute = _fabric_transition_applier(sim, network, routing, links, guards)

    for event in schedule.sorted_events():
        if event.kind in FABRIC_KINDS:
            assert routing is not None
            _arm_fabric_fault(sim, event, routing, reroute, log)
        elif event.kind in ("straggler", "job_restart"):
            if apps is None:
                raise ValueError(
                    f"fault {event.describe()} targets a job but no apps "
                    "mapping was provided to install_packet_faults"
                )
            app = apps[event.job]
            _arm_job_fault(sim, event, app, log)
        else:
            link_name = event.link if event.link is not None else DEFAULT_BOTTLENECK
            if link_name not in links:
                raise ValueError(
                    f"fault {event.describe()} targets link {link_name!r} "
                    f"which does not exist; available: {sorted(links)}"
                )
            _arm_link_fault(sim, event, links[link_name], loss_rng, log)
    return log


def _arm_link_fault(
    sim: Simulator,
    event: FaultEvent,
    link: Link,
    loss_rng: np.random.Generator,
    log: InjectionLog,
) -> None:
    def strike() -> None:
        log.record(sim.now, event.describe())
        if event.kind == "link_down":
            link.set_down()
        elif event.kind == "bandwidth":
            link.set_rate_factor(event.factor)
        elif event.kind == "loss_burst":
            link.set_fault_loss(event.loss, rng=loss_rng)
        elif event.kind == "ecn_storm":
            link.set_ecn_storm(True)

    def revert() -> None:
        log.record(sim.now, f"{event.kind} on {link.name} reverted")
        if event.kind == "link_down":
            link.set_up()
        elif event.kind == "bandwidth":
            link.set_rate_factor(1.0)
        elif event.kind == "loss_burst":
            link.set_fault_loss(0.0)
        elif event.kind == "ecn_storm":
            link.set_ecn_storm(False)

    sim.schedule_at(event.time, strike)
    sim.schedule_at(event.end_time, revert)


def _fabric_transition_applier(
    sim: Simulator,
    network: Network,
    routing: FabricRoutingState,
    links: dict[str, Link],
    guards: Optional["GuardRail"],
):
    """Closure syncing the live network to the routing state after a fault.

    Only the delta against the links *this* subsystem previously downed is
    toggled, so a concurrent classic ``link_down`` on an unrelated link is
    never clobbered by a fabric reversion.  Route reinstalls go through
    :meth:`Network.apply_routing`; pairs with no surviving path keep their
    stale route and blackhole at the severed link.
    """
    fabric_down: list[frozenset[str]] = [frozenset()]

    def apply_transition() -> None:
        down = routing.down_links()
        for name in sorted(fabric_down[0] - down):
            links[name].set_up()
        for name in sorted(down - fabric_down[0]):
            links[name].set_down()
        fabric_down[0] = down
        network.apply_routing(routing)
        if guards is not None:
            from ..guards.monitors import (
                check_reroute_conservation,
                check_route_liveness,
            )

            check_route_liveness(guards, network, routing, now=sim.now)
            check_reroute_conservation(guards, network, now=sim.now)

    return apply_transition


def _arm_fabric_fault(
    sim: Simulator,
    event: FaultEvent,
    routing: FabricRoutingState,
    reroute,
    log: InjectionLog,
) -> None:
    def strike() -> None:
        log.record(sim.now, event.describe())
        routing.apply(event)
        reroute()

    def revert() -> None:
        log.record(sim.now, f"{event.kind} on {event.target} reverted")
        routing.revert(event)
        reroute()

    sim.schedule_at(event.time, strike)
    sim.schedule_at(event.end_time, revert)


def _arm_job_fault(
    sim: Simulator, event: FaultEvent, app: TrainingApp, log: InjectionLog
) -> None:
    if event.kind == "straggler":

        def strike() -> None:
            log.record(sim.now, event.describe())
            app.compute_scale = event.factor

        def revert() -> None:
            log.record(sim.now, f"straggler on {event.job} reverted")
            app.compute_scale = 1.0

        sim.schedule_at(event.time, strike)
        sim.schedule_at(event.end_time, revert)
    else:  # job_restart

        def kill() -> None:
            log.record(sim.now, event.describe())
            app.restart(delay=event.restart_delay)

        sim.schedule_at(event.time, kill)

"""Seeded chaos campaigns: randomized fault schedules from a declarative budget.

A :class:`ChaosBudget` says what a campaign may do to the fabric — which
fault kinds, how often (MTBF), for how long, how many at once, and whether
it may blackhole traffic — and :func:`generate_campaign` samples a concrete
:class:`~repro.faults.schedule.FaultSchedule` from it.  Everything draws
from ``np.random.default_rng(seed)``, so a campaign is bit-reproducible:
same spec + budget + seed → the identical schedule, which then replays
identically on both substrates (the schedule layer's existing guarantee).

The blast-radius guarantee: unless ``allow_blackhole`` is set, no sampled
combination of concurrent faults may disconnect any rack pair — candidates
that would are skipped, so a default campaign degrades paths but never
severs them.  ``rack_partition`` (which always blackholes its rack) is
therefore only sampled when ``allow_blackhole=True``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..workloads.placement import FabricSpec
from .routing import FabricRoutingState
from .schedule import FABRIC_KINDS, FaultEvent, FaultSchedule

__all__ = ["ChaosBudget", "ChaosCampaign", "generate_campaign"]

#: How many salted re-samples :func:`generate_campaign` tries before
#: declaring the budget unsatisfiable (e.g. ``min_events`` too high for
#: the horizon/MTBF combination).
_MAX_SALTS = 64


def _mix(seed: int, salt: object) -> int:
    """Derive a child seed deterministically (CRC32 of a tagged string)."""
    return zlib.crc32(f"{seed}/{salt}".encode("ascii"))


@dataclass(frozen=True)
class ChaosBudget:
    """Declarative limits a sampled campaign must respect.

    Parameters
    ----------
    horizon:
        Length (s) of the window fault strikes are sampled in.
    mtbf:
        Mean time between failures (s): strike gaps are exponential.
    mean_duration:
        Mean fault duration (s); samples are exponential, clipped to
        ``[0.25, 2.0] x mean_duration`` so no fault is degenerate or
        campaign-dominating.
    start:
        Window start (s) — leave room for the workload to converge first.
    max_concurrent:
        Blast radius in time: candidates overlapping this many active
        faults are skipped.
    kinds:
        Fault kinds to sample from; a non-empty subset of
        :data:`~repro.faults.schedule.FABRIC_KINDS`.
    min_events:
        Re-sample (with a salted seed) until the campaign has at least
        this many faults, so "one tiny campaign" can't come up empty.
    allow_blackhole:
        Permit combinations that disconnect rack pairs.  Required for
        ``rack_partition``; off by default.
    """

    horizon: float
    mtbf: float
    mean_duration: float
    start: float = 0.0
    max_concurrent: int = 1
    kinds: tuple[str, ...] = ("spine_down", "uplink_down", "ecmp_rehash")
    min_events: int = 1
    allow_blackhole: bool = False

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon!r}")
        if self.mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf!r}")
        if self.mean_duration <= 0:
            raise ValueError(
                f"mean_duration must be positive, got {self.mean_duration!r}"
            )
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start!r}")
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be at least 1, got {self.max_concurrent!r}"
            )
        if self.min_events < 0:
            raise ValueError(
                f"min_events must be non-negative, got {self.min_events!r}"
            )
        object.__setattr__(self, "kinds", tuple(self.kinds))
        if not self.kinds:
            raise ValueError("kinds must not be empty")
        unknown = set(self.kinds) - FABRIC_KINDS
        if unknown:
            raise ValueError(
                f"unknown fabric fault kinds {sorted(unknown)}; valid kinds "
                f"are {sorted(FABRIC_KINDS)}"
            )
        if "rack_partition" in self.kinds and not self.allow_blackhole:
            raise ValueError(
                "rack_partition always blackholes its rack; set "
                "allow_blackhole=True to sample it"
            )


def generate_campaign(
    spec: FabricSpec, budget: ChaosBudget, seed: int = 0
) -> FaultSchedule:
    """Sample one fault schedule within ``budget`` on ``spec``'s fabric.

    Bit-reproducible: the same ``(spec, budget, seed)`` triple always
    yields the same schedule.  Candidates violating ``max_concurrent`` or
    (without ``allow_blackhole``) disconnecting a rack pair are skipped;
    if a pass ends with fewer than ``budget.min_events`` faults, the whole
    pass re-samples with a salted seed, still deterministically.
    """
    for salt in range(_MAX_SALTS):
        pass_seed = seed if salt == 0 else _mix(seed, f"salt{salt}")
        events = _sample_pass(spec, budget, pass_seed)
        if len(events) >= budget.min_events:
            return FaultSchedule(events=events, seed=pass_seed)
    raise ValueError(
        f"could not sample {budget.min_events} events in {_MAX_SALTS} "
        "passes; widen the horizon, lower the mtbf, or relax the budget"
    )


def _sample_pass(
    spec: FabricSpec, budget: ChaosBudget, seed: int
) -> tuple[FaultEvent, ...]:
    rng = np.random.default_rng(seed)
    events: list[FaultEvent] = []
    time = budget.start + float(rng.exponential(budget.mtbf))
    window_end = budget.start + budget.horizon
    while time < window_end:
        kind = str(rng.choice(list(budget.kinds)))
        duration = float(
            np.clip(
                rng.exponential(budget.mean_duration),
                0.25 * budget.mean_duration,
                2.0 * budget.mean_duration,
            )
        )
        candidate = _target_event(spec, rng, kind, time, duration)
        overlapping = [
            e for e in events if e.time < candidate.end_time and candidate.time < e.end_time
        ]
        acceptable = len(overlapping) < budget.max_concurrent and (
            budget.allow_blackhole
            or not _blackholes(spec, [*overlapping, candidate])
        )
        if acceptable:
            events.append(candidate)
        time += float(rng.exponential(budget.mtbf))
    return tuple(events)


def _target_event(
    spec: FabricSpec,
    rng: np.random.Generator,
    kind: str,
    time: float,
    duration: float,
) -> FaultEvent:
    if kind == "spine_down":
        spine: Optional[str] = spec.spine_name(int(rng.integers(spec.n_spines)))
        return FaultEvent(kind, time, duration, spine=spine)
    if kind == "uplink_down":
        rack = spec.rack_name(int(rng.integers(spec.n_racks)))
        spine_name = spec.spine_name(int(rng.integers(spec.n_spines)))
        return FaultEvent(kind, time, duration, link=f"{rack}->{spine_name}")
    if kind == "rack_partition":
        return FaultEvent(
            kind, time, duration,
            rack=spec.rack_name(int(rng.integers(spec.n_racks))),
        )
    assert kind == "ecmp_rehash"
    return FaultEvent(kind, time, duration)


def _blackholes(spec: FabricSpec, events: list[FaultEvent]) -> bool:
    """Would this concurrent combination disconnect any rack pair?"""
    state = FabricRoutingState(spec)
    for event in events:
        state.apply(event)
    for src in range(spec.n_racks):
        for dst in range(spec.n_racks):
            if src != dst and not state.surviving_spines(src, dst):
                return True
    return False


@dataclass(frozen=True)
class ChaosCampaign:
    """N independently seeded campaigns over one fabric and budget.

    Campaign ``i`` samples under seed ``crc32(f"{seed}/campaign{i}")``, so
    campaigns are decorrelated but each remains individually reproducible
    — rerun campaign 3 alone and it regenerates bit-identically.
    """

    spec: FabricSpec
    budget: ChaosBudget
    seed: int = 0
    n_campaigns: int = 1

    def __post_init__(self) -> None:
        if self.n_campaigns < 1:
            raise ValueError(
                f"n_campaigns must be positive, got {self.n_campaigns!r}"
            )

    def campaign_seed(self, index: int) -> int:
        """The derived seed campaign ``index`` samples under."""
        if not 0 <= index < self.n_campaigns:
            raise IndexError(
                f"campaign index {index} outside [0, {self.n_campaigns})"
            )
        return _mix(self.seed, f"campaign{index}")

    def schedule(self, index: int) -> FaultSchedule:
        """Generate (deterministically) the schedule of campaign ``index``."""
        return generate_campaign(self.spec, self.budget, self.campaign_seed(index))

    def schedules(self) -> tuple[FaultSchedule, ...]:
        """Every campaign's schedule, in campaign order."""
        return tuple(self.schedule(i) for i in range(self.n_campaigns))

"""Declarative fault schedules: what goes wrong, when, and for how long.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent` records.
It is pure data — no simulator state — so the *same* schedule replays in the
packet-level simulator (:func:`repro.faults.packet.install_packet_faults`)
and the fluid one (:class:`repro.faults.fluid.FluidFaultState`), and two
runs with the same schedule and seed are bit-identical.

Schedules validate eagerly, mirroring the sweep-input validation style of
:mod:`repro.harness.sweep`: a negative time, an unknown kind, or a link
name that does not exist in the topology fails immediately with a message
naming the offending event, not minutes into a simulation.

Schedules round-trip through JSON (:meth:`FaultSchedule.to_json` /
:meth:`FaultSchedule.from_json`) so fault scenarios can be checked in next
to workload scenarios; the file format is documented in docs/FAULTS.md.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = ["FABRIC_KINDS", "FAULT_KINDS", "FaultEvent", "FaultSchedule"]

#: Every fault class the injectors understand, with a one-line meaning.
FAULT_KINDS: dict[str, str] = {
    "link_down": "link carries nothing for `duration` seconds (flap)",
    "bandwidth": "link rate multiplied by `factor` for `duration` seconds",
    "loss_burst": "extra Bernoulli loss `loss` on the link for `duration` s",
    "ecn_storm": "every ECN-capable packet is CE-marked for `duration` s",
    "straggler": "job's compute phases stretched by `factor` for `duration` s",
    "job_restart": "job killed mid-iteration; restarts after `restart_delay` s",
    "spine_down": "spine switch and all its uplinks fail for `duration` s",
    "uplink_down": "one rack<->spine uplink pair fails for `duration` s",
    "rack_partition": "every uplink of `rack` fails for `duration` s",
    "ecmp_rehash": "ECMP seed perturbed for `duration` s (paths reshuffle)",
}

#: Kinds that target a link (``event.link``) vs. a job (``event.job``).
_LINK_KINDS = frozenset({"link_down", "bandwidth", "loss_burst", "ecn_storm"})
_JOB_KINDS = frozenset({"straggler", "job_restart"})

#: Fabric-level kinds: they perturb the multi-rack routing state rather than
#: a single directed link, need a :class:`~repro.workloads.placement.FabricSpec`
#: to replay, and are handled by :class:`repro.faults.routing.FabricRoutingState`.
FABRIC_KINDS = frozenset(
    {"spine_down", "uplink_down", "rack_partition", "ecmp_rehash"}
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    time:
        Simulation time (s) the fault strikes.
    duration:
        How long it lasts; the injector reverts the fault at
        ``time + duration``.  Ignored by ``job_restart`` (instantaneous
        kill; the downtime is ``restart_delay``).
    link:
        Target link for link faults, as ``"src->dst"`` (e.g.
        ``"sw_l->sw_r"``).  ``None`` means the topology's bottleneck.
        For ``uplink_down`` this is the canonical ``"rack{r}->spine{s}"``
        name and means *both* directions of the physical uplink.
    job:
        Target job name for ``straggler`` / ``job_restart``.
    spine:
        Target spine switch for ``spine_down`` (e.g. ``"spine0"``).
    rack:
        Target rack switch for ``rack_partition`` (e.g. ``"rack2"``).
    factor:
        ``bandwidth``: remaining fraction of the rate, in (0, 1).
        ``straggler``: compute-time multiplier, > 1.
    loss:
        ``loss_burst``: extra drop probability, in (0, 1).
    restart_delay:
        ``job_restart``: seconds of downtime before the job's fresh
        iteration begins.
    """

    kind: str
    time: float
    duration: float = 0.0
    link: Optional[str] = None
    job: Optional[str] = None
    spine: Optional[str] = None
    rack: Optional[str] = None
    factor: float = 1.0
    loss: float = 0.0
    restart_delay: float = 0.0

    @property
    def end_time(self) -> float:
        """When the fault reverts (equals :attr:`time` for instant faults)."""
        return self.time + self.duration

    @property
    def target(self) -> str:
        """The name of whatever the fault hits, for logs and reports."""
        field_name, _ = _DESCRIBE_RECIPES.get(self.kind, ("", ()))
        value = getattr(self, field_name, None) if field_name else None
        if value is not None:
            return str(value)
        return "the fabric" if self.kind in FABRIC_KINDS else "bottleneck"

    def describe(self) -> str:
        """Human-readable one-liner for reports and degradation records."""
        _, params = _DESCRIBE_RECIPES.get(self.kind, ("", ()))
        extra = "".join(
            f" {name}={getattr(self, name):g}{suffix}" for name, suffix in params
        )
        return (
            f"{self.kind} on {self.target} at t={self.time:g}s"
            + (f" for {self.duration:g}s" if self.duration > 0 else "")
            + extra
        )


#: How :meth:`FaultEvent.describe` renders each kind: the attribute naming
#: the target (empty string → substrate default) and the parameter attributes
#: worth printing, each with a unit suffix.  The table must cover
#: :data:`FAULT_KINDS` exactly — a test enforces the pairing, so a new kind
#: cannot ship without a rendering.
_DESCRIBE_RECIPES: dict[str, tuple[str, tuple[tuple[str, str], ...]]] = {
    "link_down": ("link", ()),
    "bandwidth": ("link", (("factor", ""),)),
    "loss_burst": ("link", (("loss", ""),)),
    "ecn_storm": ("link", ()),
    "straggler": ("job", (("factor", ""),)),
    "job_restart": ("job", (("restart_delay", "s"),)),
    "spine_down": ("spine", ()),
    "uplink_down": ("link", ()),
    "rack_partition": ("rack", ()),
    "ecmp_rehash": ("", ()),
}


def _check(condition: bool, index: int, event: FaultEvent, message: str) -> None:
    if not condition:
        raise ValueError(f"fault event #{index} ({event.kind!r}): {message}")


@dataclass(frozen=True)
class FaultSchedule:
    """A validated, time-sorted collection of fault events.

    ``seed`` feeds every stochastic component of injection (currently the
    burst-loss coin flips in the packet simulator), so a schedule replays
    deterministically: same schedule + same seed → identical drops.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        self.validate()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate(
        self,
        link_names: Optional[Iterable[str]] = None,
        job_names: Optional[Iterable[str]] = None,
        fabric: Optional[object] = None,
    ) -> None:
        """Check every event; raise ``ValueError`` naming the first bad one.

        Intrinsic checks (times, kinds, parameter ranges) always run; when
        ``link_names`` / ``job_names`` are given — the topology's links and
        the scenario's jobs — targets are checked for existence too, so a
        typo'd link name fails before the simulation starts.

        ``fabric`` accepts a :class:`repro.workloads.placement.FabricSpec`
        or an assembled :class:`repro.simulator.topology.Network` and checks
        fabric-fault targets (spines, racks, uplinks) for existence, with
        errors naming the valid targets.  It also supplies ``link_names``
        when those were not given explicitly.
        """
        links = set(link_names) if link_names is not None else None
        jobs = set(job_names) if job_names is not None else None
        spines: Optional[set[str]] = None
        racks: Optional[set[str]] = None
        if fabric is not None:
            fabric_links, spines, racks = _topology_names(fabric)
            if links is None:
                links = fabric_links
        for i, event in enumerate(self.events):
            _check(
                event.kind in FAULT_KINDS, i, event,
                f"unknown kind; valid kinds are {sorted(FAULT_KINDS)}",
            )
            _check(event.time >= 0, i, event,
                   f"time must be non-negative, got {event.time!r}")
            _check(event.duration >= 0, i, event,
                   f"duration must be non-negative, got {event.duration!r}")
            if event.kind in _LINK_KINDS:
                _check(event.job is None, i, event,
                       "a link fault cannot name a job")
                if links is not None and event.link is not None:
                    _check(
                        event.link in links, i, event,
                        f"link {event.link!r} does not exist in the "
                        f"topology; available links: {sorted(links)}",
                    )
            if event.kind in _JOB_KINDS:
                _check(event.link is None, i, event,
                       "a job fault cannot name a link")
                _check(event.job is not None, i, event,
                       "a job fault must name its target job")
                if jobs is not None:
                    _check(
                        event.job in jobs, i, event,
                        f"job {event.job!r} is not in the scenario; "
                        f"jobs: {sorted(jobs)}",
                    )
            if event.kind == "bandwidth":
                _check(0.0 < event.factor < 1.0, i, event,
                       f"factor must be in (0, 1), got {event.factor!r}")
                _check(event.duration > 0, i, event,
                       "a bandwidth degradation needs a positive duration")
            if event.kind == "straggler":
                _check(event.factor > 1.0, i, event,
                       "factor must exceed 1 (a compute slowdown), got "
                       f"{event.factor!r}")
                _check(event.duration > 0, i, event,
                       "a straggler needs a positive duration")
            if event.kind == "loss_burst":
                _check(0.0 < event.loss < 1.0, i, event,
                       f"loss must be in (0, 1), got {event.loss!r}")
                _check(event.duration > 0, i, event,
                       "a loss burst needs a positive duration")
            if event.kind in ("link_down", "ecn_storm"):
                _check(event.duration > 0, i, event,
                       f"a {event.kind} needs a positive duration")
            if event.kind == "job_restart":
                _check(event.restart_delay >= 0, i, event,
                       "restart_delay must be non-negative, got "
                       f"{event.restart_delay!r}")
            if event.kind in FABRIC_KINDS:
                _check(event.job is None, i, event,
                       "a fabric fault cannot name a job")
                _check(event.duration > 0, i, event,
                       f"a {event.kind} needs a positive duration")
            else:
                _check(event.spine is None and event.rack is None, i, event,
                       "only fabric faults may name a spine or rack")
            if event.kind == "spine_down":
                _check(event.spine is not None, i, event,
                       "a spine_down must name its spine (e.g. 'spine0')")
                _check(event.link is None and event.rack is None, i, event,
                       "a spine_down targets only a spine")
                if spines is not None:
                    _check(
                        event.spine in spines, i, event,
                        f"spine {event.spine!r} does not exist in the "
                        f"fabric; valid spines: {sorted(spines)}",
                    )
            if event.kind == "uplink_down":
                _check(
                    event.link is not None and "->" in (event.link or ""),
                    i, event,
                    "an uplink_down must name its uplink as "
                    "'rack{r}->spine{s}' (e.g. 'rack0->spine1')",
                )
                _check(event.spine is None and event.rack is None, i, event,
                       "an uplink_down targets only its rack->spine uplink")
                if spines is not None and racks is not None:
                    uplinks = {f"{r}->{s}" for r in racks for s in spines}
                    _check(
                        event.link in uplinks, i, event,
                        f"uplink {event.link!r} does not exist in the "
                        f"fabric; valid uplinks: {sorted(uplinks)}",
                    )
            if event.kind == "rack_partition":
                _check(event.rack is not None, i, event,
                       "a rack_partition must name its rack (e.g. 'rack2')")
                _check(event.link is None and event.spine is None, i, event,
                       "a rack_partition targets only a rack")
                if racks is not None:
                    _check(
                        event.rack in racks, i, event,
                        f"rack {event.rack!r} does not exist in the "
                        f"fabric; valid racks: {sorted(racks)}",
                    )
            if event.kind == "ecmp_rehash":
                _check(
                    event.link is None and event.spine is None
                    and event.rack is None,
                    i, event,
                    "an ecmp_rehash takes no target (it perturbs the whole "
                    "fabric's hash seed)",
                )

    def sorted_events(self) -> tuple[FaultEvent, ...]:
        """Events ordered by strike time (stable for equal times)."""
        return tuple(sorted(self.events, key=lambda e: e.time))

    def transition_times(self) -> tuple[float, ...]:
        """Every time the fault state changes (strikes and reversions)."""
        times: set[float] = set()
        for event in self.events:
            times.add(event.time)
            if event.duration > 0:
                times.add(event.end_time)
            if event.kind == "job_restart":
                times.add(event.time + event.restart_delay)
        return tuple(sorted(times))

    # -- persistence -------------------------------------------------------

    def to_json(self, path: Optional[Path | str] = None) -> str:
        """Serialize (and optionally write) the schedule as JSON."""
        payload = {
            "seed": self.seed,
            "events": [
                {k: v for k, v in asdict(event).items() if v is not None}
                for event in self.events
            ],
        }
        text = json.dumps(payload, indent=2) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: Path | str) -> "FaultSchedule":
        """Load a schedule from a JSON file path or a JSON string."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(source).read_text()
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ValueError(f"fault schedule is not valid JSON: {error}") from None
        if not isinstance(payload, dict) or "events" not in payload:
            raise ValueError(
                "fault schedule JSON must be an object with an 'events' list "
                "(and an optional integer 'seed')"
            )
        events = []
        for i, raw in enumerate(payload["events"]):
            if not isinstance(raw, dict):
                raise ValueError(f"fault event #{i} must be an object, got {raw!r}")
            unknown = set(raw) - {f.name for f in _event_fields()}
            if unknown:
                raise ValueError(
                    f"fault event #{i} has unknown keys {sorted(unknown)}; "
                    f"valid keys: {sorted(f.name for f in _event_fields())}"
                )
            events.append(FaultEvent(**raw))
        return cls(events=tuple(events), seed=int(payload.get("seed", 0)))


def _event_fields():
    from dataclasses import fields

    return fields(FaultEvent)


def _topology_names(topology: object) -> tuple[set[str], set[str], set[str]]:
    """``(links, spines, racks)`` name sets of a FabricSpec or a Network.

    Duck-typed so :mod:`repro.faults` needs no import of either class: a
    ``FabricSpec`` exposes ``capacities_gbps()`` plus ``spine_name`` /
    ``rack_name``; an assembled ``Network`` exposes ``links`` keyed by
    ``(src, dst)`` and a ``switches`` mapping whose spine/rack switches
    follow the fat-tree naming convention.
    """
    capacities = getattr(topology, "capacities_gbps", None)
    if callable(capacities):
        links = set(capacities())
        spines = {
            topology.spine_name(k) for k in range(topology.n_spines)  # type: ignore[attr-defined]
        }
        racks = {
            topology.rack_name(r) for r in range(topology.n_racks)  # type: ignore[attr-defined]
        }
        return links, spines, racks
    net_links = getattr(topology, "links", None)
    switches = getattr(topology, "switches", None)
    if isinstance(net_links, dict) and switches is not None:
        links = {f"{src}->{dst}" for (src, dst) in net_links}
        spines = {name for name in switches if name.startswith("spine")}
        racks = {name for name in switches if name.startswith("rack")}
        return links, spines, racks
    raise TypeError(
        "fabric must be a FabricSpec or an assembled Network, got "
        f"{type(topology).__name__}"
    )

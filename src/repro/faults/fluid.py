"""Replaying a fault schedule inside the fluid (flow-level) simulator.

The fluid model has no packets, queues or timers, so each fault class maps
onto the quantities the model *does* have — bottleneck capacity, per-job
compute time, and per-job iteration progress:

========== =========================================================
kind        fluid effect while active
========== =========================================================
link_down   capacity factor 0 (nothing flows)
bandwidth   capacity factor ``event.factor``
loss_burst  capacity factor ``1 - loss`` (first-order throughput hit;
            the packet simulator models the real, super-linear one)
ecn_storm   capacity factor ``0.5`` (every sender halves its window
            when its whole window is marked — the DCTCP limit case)
straggler   compute phases of ``event.job`` stretched by ``factor``
job_restart job's in-flight iteration discarded; ``sent_bits`` zeroed
            (the fluid analogue of MLTCP's ``bytes_sent`` reset) and
            the job re-enters after ``restart_delay`` seconds
========== =========================================================

Concurrent capacity faults compose multiplicatively.  The mapping is a
deliberate simplification — docs/FAULTS.md spells out where it diverges
from the packet-level behaviour — but both substrates replay the *same*
:class:`~repro.faults.schedule.FaultSchedule`, which is what lets recovery
experiments cross-check each other.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional

from .schedule import FABRIC_KINDS, FaultEvent, FaultSchedule

__all__ = ["FluidFaultState", "ECN_STORM_CAPACITY_FACTOR"]

#: Fluid stand-in for a marking storm: with every packet of a window CE
#: marked, a DCTCP sender's alpha saturates at 1 and the window halves each
#: RTT — steady state, half the healthy throughput.
ECN_STORM_CAPACITY_FACTOR = 0.5

#: The only link name the single-bottleneck fluid model knows.
_FLUID_LINKS = ("bottleneck",)


class FluidFaultState:
    """Queryable fault state for :class:`repro.fluid.flowsim.FluidSimulator`.

    Built once per run from a :class:`FaultSchedule`; the simulator asks it
    three questions at every step — the current capacity factor, a job's
    current compute scale, and which restarts are due — plus the transition
    times it must not integrate across (fault boundaries are rate-change
    events, exactly like phase completions).
    """

    def __init__(
        self, schedule: FaultSchedule, job_names: Iterable[str]
    ) -> None:
        schedule.validate(link_names=_FLUID_LINKS, job_names=job_names)
        for event in schedule:
            if event.kind in FABRIC_KINDS:
                raise ValueError(
                    f"fault {event.describe()} is a fabric fault; the "
                    "single-bottleneck fluid model has no fabric — replay "
                    "it with repro.fluid.fabric.FluidFabricFaults on a "
                    "FabricSpec instead"
                )
        self.schedule = schedule
        self._capacity_events: list[FaultEvent] = []
        self._straggler_events: list[FaultEvent] = []
        self._restart_events: list[FaultEvent] = []
        for event in schedule.sorted_events():
            if event.kind in ("link_down", "bandwidth", "loss_burst", "ecn_storm"):
                self._capacity_events.append(event)
            elif event.kind == "straggler":
                self._straggler_events.append(event)
            else:
                self._restart_events.append(event)
        self._restarts_applied = 0
        self._transitions = list(schedule.transition_times())
        #: Applied transitions, mirroring the packet injector's log:
        #: ``(sim_time, description)`` pairs for the degradations section.
        self.log: list[tuple[float, str]] = []

    @staticmethod
    def _active(event: FaultEvent, now: float) -> bool:
        return event.time <= now < event.end_time

    def capacity_factor(self, now: float) -> float:
        """Product of every active capacity-affecting fault's factor."""
        factor = 1.0
        for event in self._capacity_events:
            if not self._active(event, now):
                continue
            if event.kind == "link_down":
                factor = 0.0
            elif event.kind == "bandwidth":
                factor *= event.factor
            elif event.kind == "loss_burst":
                factor *= 1.0 - event.loss
            elif event.kind == "ecn_storm":
                factor *= ECN_STORM_CAPACITY_FACTOR
        return factor

    def compute_scale(self, job: str, now: float) -> float:
        """Compute-time multiplier for ``job`` at ``now`` (stragglers)."""
        scale = 1.0
        for event in self._straggler_events:
            if event.job == job and self._active(event, now):
                scale *= event.factor
        return scale

    def due_restarts(self, now: float, eps: float = 1e-12) -> list[FaultEvent]:
        """Restart events whose strike time has arrived, each exactly once."""
        due = []
        while self._restarts_applied < len(self._restart_events):
            event = self._restart_events[self._restarts_applied]
            if event.time > now + eps:
                break
            due.append(event)
            self._restarts_applied += 1
        return due

    def next_transition_after(self, now: float, eps: float = 1e-12) -> Optional[float]:
        """The next time the fault state changes, or None when quiescent."""
        index = bisect.bisect_right(self._transitions, now + eps)
        return self._transitions[index] if index < len(self._transitions) else None

    @property
    def last_transition(self) -> float:
        """When the final fault transition happens (0 for an empty schedule)."""
        return self._transitions[-1] if self._transitions else 0.0

    def record(self, time: float, description: str) -> None:
        """Append one applied transition to the log."""
        self.log.append((time, description))

    def descriptions(self) -> list[str]:
        """The log as human-readable lines, in application order."""
        return [f"t={time:g}s: {text}" for time, text in self.log]

    def context_for(self, time: float) -> Optional[str]:
        """The most recent applied transition at or before ``time``.

        Mirrors :meth:`repro.faults.packet.InjectionLog.context_for`: maps
        an :class:`repro.guards.InvariantViolation` detection time back to
        the fault that plausibly provoked it (docs/ROBUSTNESS.md).
        """
        latest: Optional[str] = None
        for applied_at, text in self.log:
            if applied_at > time:
                break
            latest = f"t={applied_at:g}s: {text}"
        return latest

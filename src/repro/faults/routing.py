"""Failure-aware ECMP routing state for multi-rack fabrics.

:class:`FabricRoutingState` is the single source of truth both injectors
consult when a fabric fault (:data:`repro.faults.schedule.FABRIC_KINDS`)
strikes or reverts: it tracks which spines, uplinks, and racks are down,
and recomputes paths with the *same* CRC32+avalanche ECMP rule
(:func:`repro.workloads.placement.ecmp_index`) applied over the set of
surviving spines.  Because the packet simulator reinstalls
``Network.routes`` from this state and the fluid simulator asks it for
``path_links`` directly, a failed flow is rerouted onto bit-identical
links in both substrates — the property the packet-vs-fluid equivalence
test in ``tests/test_chaos.py`` pins down.

With no active faults and rehash depth 0 the state reproduces
``FabricSpec.path_nodes`` exactly, so installing it is free until the
first fault strikes.

Overlapping identical faults are reference-counted: two concurrent
``spine_down`` events on the same spine keep it down until *both* revert.
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import Optional

from ..workloads.placement import FabricSpec, ecmp_index, host_rack
from .schedule import FABRIC_KINDS, FaultEvent

__all__ = ["FabricRoutingState", "rehashed_seed"]


def rehashed_seed(seed: int, depth: int) -> int:
    """The effective ECMP seed after ``depth`` nested ``ecmp_rehash`` events.

    Depth 0 is the fabric's configured seed; each nesting level derives a
    new 32-bit seed from the base via CRC32 so the perturbation is
    deterministic, substrate-independent, and reverts exactly when the
    rehash window closes.
    """
    if depth <= 0:
        return seed
    return zlib.crc32(f"{seed}/rehash{depth}".encode("ascii"))


class FabricRoutingState:
    """Live fault state + surviving-spine ECMP for one :class:`FabricSpec`."""

    def __init__(self, spec: FabricSpec) -> None:
        self.spec = spec
        self._down_spines: Counter[int] = Counter()
        self._down_uplinks: Counter[tuple[int, int]] = Counter()
        self._partitioned_racks: Counter[int] = Counter()
        self._rehash_depth = 0
        #: Bumped on every apply/revert — cheap change detection for callers
        #: that cache derived routing tables.
        self.generation = 0

    # -- fault bookkeeping -------------------------------------------------

    @property
    def ecmp_seed(self) -> int:
        """The seed the hash currently runs under (rehash-aware)."""
        return rehashed_seed(self.spec.ecmp_seed, self._rehash_depth)

    def healthy(self) -> bool:
        """True when no fabric fault is active and the seed is unperturbed."""
        return (
            not +self._down_spines
            and not +self._down_uplinks
            and not +self._partitioned_racks
            and self._rehash_depth == 0
        )

    def apply(self, event: FaultEvent) -> None:
        """Register a striking fabric fault."""
        self._shift(event, +1)

    def revert(self, event: FaultEvent) -> None:
        """Unregister a reverting fabric fault (must pair with an apply)."""
        self._shift(event, -1)

    def _shift(self, event: FaultEvent, delta: int) -> None:
        if event.kind == "ecmp_rehash":
            if delta < 0 and self._rehash_depth <= 0:
                raise ValueError(
                    f"revert of {event.describe()} without a matching apply"
                )
            self._rehash_depth += delta
        else:
            if event.kind == "spine_down":
                counter: Counter = self._down_spines
                key: object = self._spine_index(event.spine)
            elif event.kind == "uplink_down":
                counter = self._down_uplinks
                key = self._uplink_indices(event.link)
            elif event.kind == "rack_partition":
                counter = self._partitioned_racks
                key = self._rack_index(event.rack)
            else:
                raise ValueError(
                    f"{event.kind!r} is not a fabric fault; fabric kinds "
                    f"are {sorted(FABRIC_KINDS)}"
                )
            if delta < 0 and counter[key] <= 0:
                raise ValueError(
                    f"revert of {event.describe()} without a matching apply"
                )
            counter[key] += delta
        self.generation += 1

    def _spine_index(self, name: Optional[str]) -> int:
        index = _indexed(name, "spine")
        if index is None or not 0 <= index < self.spec.n_spines:
            raise ValueError(
                f"spine {name!r} does not exist; the fabric has "
                f"{self.spec.n_spines} spines"
            )
        return index

    def _rack_index(self, name: Optional[str]) -> int:
        index = _indexed(name, "rack")
        if index is None or not 0 <= index < self.spec.n_racks:
            raise ValueError(
                f"rack {name!r} does not exist; the fabric has "
                f"{self.spec.n_racks} racks"
            )
        return index

    def _uplink_indices(self, link: Optional[str]) -> tuple[int, int]:
        src, _, dst = (link or "").partition("->")
        rack = _indexed(src, "rack")
        spine = _indexed(dst, "spine")
        if (
            rack is None or spine is None
            or not 0 <= rack < self.spec.n_racks
            or not 0 <= spine < self.spec.n_spines
        ):
            raise ValueError(
                f"uplink {link!r} does not exist; name it 'rack{{r}}->spine"
                f"{{s}}' with r < {self.spec.n_racks}, s < {self.spec.n_spines}"
            )
        return rack, spine

    # -- surviving topology ------------------------------------------------

    def uplink_up(self, rack: int, spine: int) -> bool:
        """Is the physical rack<->spine uplink pair currently usable?"""
        return (
            self._down_spines[spine] == 0
            and self._down_uplinks[(rack, spine)] == 0
            and self._partitioned_racks[rack] == 0
        )

    def surviving_spines(self, src_rack: int, dst_rack: int) -> tuple[int, ...]:
        """Spines that can still carry src_rack -> dst_rack traffic."""
        return tuple(
            k
            for k in range(self.spec.n_spines)
            if self.uplink_up(src_rack, k) and self.uplink_up(dst_rack, k)
        )

    def spine_for(self, src_rack: int, dst_host: str) -> Optional[int]:
        """Deterministic ECMP spine over the surviving set (None = no path).

        Healthy state reproduces ``FabricSpec.spine_for`` bit-for-bit: the
        hash input is unchanged and the choice set is all spines.
        """
        dst_rack = host_rack(dst_host)
        choices = self.surviving_spines(src_rack, dst_rack)
        if not choices:
            return None
        pick = ecmp_index(
            self.ecmp_seed, self.spec.rack_name(src_rack), dst_host,
            len(choices),
        )
        return choices[pick]

    def path_nodes(self, src: str, dst: str) -> Optional[tuple[str, ...]]:
        """Current hop sequence src -> dst, or None when no path survives."""
        src_rack = host_rack(src)
        dst_rack = host_rack(dst)
        if src_rack == dst_rack:
            return (src, self.spec.rack_name(src_rack), dst)
        spine = self.spine_for(src_rack, dst)
        if spine is None:
            return None
        return (
            src,
            self.spec.rack_name(src_rack),
            self.spec.spine_name(spine),
            self.spec.rack_name(dst_rack),
            dst,
        )

    def path_links(self, src: str, dst: str) -> Optional[tuple[str, ...]]:
        """Directed link names of :meth:`path_nodes` (None = no path)."""
        nodes = self.path_nodes(src, dst)
        if nodes is None:
            return None
        return tuple(f"{a}->{b}" for a, b in zip(nodes, nodes[1:]))

    def down_links(self) -> frozenset[str]:
        """Directed fabric link names currently severed by active faults."""
        spec = self.spec
        down: set[str] = set()

        def _pair(rack: int, spine: int) -> None:
            rack_name = spec.rack_name(rack)
            spine_name = spec.spine_name(spine)
            down.add(f"{rack_name}->{spine_name}")
            down.add(f"{spine_name}->{rack_name}")

        for spine, count in self._down_spines.items():
            if count > 0:
                for rack in range(spec.n_racks):
                    _pair(rack, spine)
        for (rack, spine), count in self._down_uplinks.items():
            if count > 0:
                _pair(rack, spine)
        for rack, count in self._partitioned_racks.items():
            if count > 0:
                for spine in range(spec.n_spines):
                    _pair(rack, spine)
        return frozenset(down)


def _indexed(name: Optional[str], prefix: str) -> Optional[int]:
    """Parse ``"{prefix}{i}"`` -> ``i``; None when malformed."""
    if not name or not name.startswith(prefix):
        return None
    suffix = name[len(prefix):]
    if not suffix.isdigit():
        return None
    return int(suffix)

"""pFabric-style minimal transport for the packet-level simulator.

pFabric (Alizadeh et al., SIGCOMM '13) decouples flow scheduling from rate
control: switches keep tiny priority queues that transmit the packet of the
flow with the *least remaining bytes* first (and drop the most-remaining
packet on overflow), while end hosts run a deliberately minimal transport —
start at line rate with a fixed window, recover with timeouts, no additive
increase.  Pair :class:`PFabricSender` with
:class:`~repro.simulator.queues.PriorityQueue` on the bottleneck to model
it; the receiver side reuses :class:`~repro.tcp.base.TcpReceiver`.

This is the packet-granularity version of the fluid
:class:`~repro.fluid.allocation.SRPT` policy, used to cross-check the
paper's Figure 2(b) head-of-line-blocking argument.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..simulator.engine import EventEntry, Simulator
from ..simulator.node import Host
from ..simulator.packet import DEFAULT_POOL, Packet
from .base import DEFAULT_MSS_BYTES

__all__ = ["PFabricSender"]


class PFabricSender:
    """Fixed-window sender stamping pFabric priorities on every packet.

    ``priority`` is the flow's remaining byte count at transmit time, so the
    fabric serves the shortest remaining flow first.  Loss recovery is a
    simple per-flow retransmission timer with go-back-N, as in pFabric's
    minimal transport.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        peer: str,
        window: int = 16,
        mss_bytes: int = DEFAULT_MSS_BYTES,
        rto: float = 3e-3,
        on_all_acked: Optional[Callable[[], None]] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be positive, got {window!r}")
        if rto <= 0:
            raise ValueError(f"rto must be positive, got {rto!r}")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.peer = peer
        self.window = window
        self.mss_bytes = mss_bytes
        self.rto = rto
        self.on_all_acked = on_all_acked

        self.snd_una = 0
        self.snd_nxt = 0
        self.target = 0
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.acked_bytes_log: list[tuple[float, int]] = []
        self._timer: Optional[EventEntry] = None
        host.register_flow(flow_id, self)

    # -- application interface ---------------------------------------------

    def send_bytes(self, nbytes: int) -> int:
        """Queue ``nbytes`` for delivery; returns segments enqueued."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes!r}")
        segments = -(-nbytes // self.mss_bytes)
        self.target += segments
        self._pump()
        return segments

    def all_acked(self) -> bool:
        """Whether everything queued has been acknowledged."""
        return self.snd_una >= self.target

    @property
    def smoothed_rtt(self) -> Optional[float]:
        """Always None: pFabric's minimal transport keeps no RTT state."""
        return None

    # -- packet handling ------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Handle an arriving cumulative ACK."""
        if not packet.is_ack:
            raise RuntimeError(f"pFabric sender {self.flow_id} got data: {packet!r}")
        if packet.seq > self.snd_una:
            newly = packet.seq - self.snd_una
            self.snd_una = packet.seq
            self.snd_nxt = max(self.snd_nxt, self.snd_una)
            self.acked_bytes_log.append((self.sim.now, newly * self.mss_bytes))
            self._restart_timer()
        DEFAULT_POOL.release(packet)
        if self.all_acked() and self.target > 0:
            self._cancel_timer()
            if self.on_all_acked is not None:
                self.on_all_acked()
            return
        self._pump()

    # -- internals --------------------------------------------------------------

    def _pump(self) -> None:
        while self.snd_nxt < self.target and self.snd_nxt < self.snd_una + self.window:
            self._transmit(self.snd_nxt)
            self.snd_nxt += 1
        if self.snd_nxt > self.snd_una and self._timer is None:
            self._restart_timer()

    def _transmit(self, seq: int) -> None:
        remaining = (self.target - self.snd_una) * self.mss_bytes
        packet = DEFAULT_POOL.acquire(
            flow_id=self.flow_id,
            src=self.host.name,
            dst=self.peer,
            is_ack=False,
            seq=seq,
            payload_bytes=self.mss_bytes,
            sent_time=self.sim.now,
            priority=float(remaining),
        )
        self.segments_sent += 1
        self.host.send(packet)

    def _restart_timer(self) -> None:
        self._cancel_timer()
        if self.snd_nxt > self.snd_una:
            self._timer = self.sim.schedule(self.rto, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self.all_acked():
            return
        self.timeouts += 1
        self.retransmissions += 1
        # Go-back-N from the first unacknowledged segment.
        self.snd_nxt = self.snd_una
        self._pump()

"""Simplified DCQCN rate-based congestion control + MLTCP-DCQCN.

The paper's technique applies to "congestion window (or sending rate)"
algorithms; DCQCN is the canonical rate-based datacenter CC (RoCE).  This
module provides a paced :class:`RateSender` driven by a
:class:`DcqcnController`:

* ECN marks echoed by the receiver act as CNPs: ``alpha`` rises and the
  current rate is cut by ``alpha/2`` (at most once per ``cnp_interval``).
* A periodic timer raises the rate through DCQCN's fast-recovery stages
  (binary approach to the target rate) followed by additive increase.
* :class:`MltcpDcqcnController` scales the additive-increase step ``R_AI``
  by ``F(bytes_ratio)`` — the rate-based analogue of Eq. 1.

Simplifications: the fabric is assumed lossless for rate-based flows (as
RoCE/PFC provides); byte counters replace per-QP hardware state; timer
periods are parameters rather than silicon constants.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.config import MLTCPConfig
from ..core.iteration import IterationTracker
from ..simulator.engine import EventEntry, Simulator
from ..simulator.node import Host
from ..simulator.packet import DEFAULT_POOL, Packet
from .base import DEFAULT_MSS_BYTES

__all__ = ["DcqcnController", "MltcpDcqcnController", "RateSender"]


class DcqcnController:
    """DCQCN rate state machine (alpha, target/current rate, stages)."""

    name = "dcqcn"

    def __init__(
        self,
        line_rate_bps: float,
        rate_ai_bps: float | None = None,
        min_rate_bps: float | None = None,
        g: float = 1.0 / 16.0,
        fast_recovery_stages: int = 3,
    ) -> None:
        if line_rate_bps <= 0:
            raise ValueError(f"line_rate_bps must be positive, got {line_rate_bps!r}")
        self.line_rate_bps = line_rate_bps
        self.rate_ai_bps = rate_ai_bps if rate_ai_bps is not None else line_rate_bps / 20.0
        self.min_rate_bps = min_rate_bps if min_rate_bps is not None else line_rate_bps / 500.0
        if not 0 < g <= 1:
            raise ValueError(f"g must be in (0, 1], got {g!r}")
        self.g = g
        self.fast_recovery_stages = fast_recovery_stages
        self.alpha = 1.0
        self.current_rate_bps = line_rate_bps
        self.target_rate_bps = line_rate_bps
        self._stage = 0
        self.congestion_events = 0

    def on_congestion(self) -> None:
        """One CNP: raise alpha, remember the target, cut the rate."""
        self.alpha = (1.0 - self.g) * self.alpha + self.g
        self.target_rate_bps = self.current_rate_bps
        self.current_rate_bps = max(
            self.min_rate_bps, self.current_rate_bps * (1.0 - self.alpha / 2.0)
        )
        self._stage = 0
        self.congestion_events += 1

    def on_alpha_timer(self) -> None:
        """Periodic alpha decay while no CNPs arrive."""
        self.alpha = (1.0 - self.g) * self.alpha

    def on_rate_timer(self) -> None:
        """Periodic rate increase: fast recovery, then additive increase."""
        self._stage += 1
        if self._stage > self.fast_recovery_stages:
            self.target_rate_bps = min(
                self.line_rate_bps, self.target_rate_bps + self._ai_step()
            )
        self.current_rate_bps = min(
            self.line_rate_bps,
            0.5 * (self.current_rate_bps + self.target_rate_bps),
        )

    def observe_delivery(self, now: float, acked_bytes: int, rtt: Optional[float]) -> None:
        """Delivery notification hook (MLTCP feeds its tracker here)."""

    def _ai_step(self) -> float:
        """Additive-increase step; MLTCP-DCQCN scales this by F."""
        return self.rate_ai_bps


class MltcpDcqcnController(DcqcnController):
    """DCQCN with the additive-increase step scaled by ``F(bytes_ratio)``."""

    name = "mltcp-dcqcn"

    def __init__(
        self,
        line_rate_bps: float,
        config: MLTCPConfig | None = None,
        rate_ai_bps: float | None = None,
        min_rate_bps: float | None = None,
        g: float = 1.0 / 16.0,
        fast_recovery_stages: int = 3,
    ) -> None:
        super().__init__(
            line_rate_bps,
            rate_ai_bps=rate_ai_bps,
            min_rate_bps=min_rate_bps,
            g=g,
            fast_recovery_stages=fast_recovery_stages,
        )
        self.config = config if config is not None else MLTCPConfig()
        self.tracker = IterationTracker(self.config)

    def observe_delivery(self, now: float, acked_bytes: int, rtt: Optional[float]) -> None:
        """Feed Algorithm 1's tracker with newly delivered bytes."""
        self.tracker.on_ack(now=now, acked_bytes=acked_bytes, smoothed_rtt=rtt)

    def _ai_step(self) -> float:
        return self.tracker.aggressiveness() * self.rate_ai_bps


class RateSender:
    """Paced, rate-controlled sender (models an RoCE QP over the fabric).

    Emits MSS-sized segments spaced by ``size / current_rate``; the receiver
    ACKs cumulatively and echoes ECN marks, which drive the controller.
    Assumes a lossless path (provision the queue accordingly).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        peer: str,
        controller: DcqcnController,
        mss_bytes: int = DEFAULT_MSS_BYTES,
        on_all_acked: Optional[Callable[[], None]] = None,
        alpha_timer: float = 500e-6,
        rate_timer: float = 1e-3,
        cnp_interval: float = 50e-6,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.peer = peer
        self.controller = controller
        self.mss_bytes = mss_bytes
        self.on_all_acked = on_all_acked
        self.alpha_timer = alpha_timer
        self.rate_timer = rate_timer
        self.cnp_interval = cnp_interval

        self.snd_nxt = 0
        self.snd_una = 0
        self.target = 0
        self.segments_sent = 0
        self._emitting = False
        self._last_cnp_time = -float("inf")
        self._alpha_handle: Optional[EventEntry] = None
        self._rate_handle: Optional[EventEntry] = None
        self._srtt: Optional[float] = None
        self._send_times: dict[int, float] = {}
        host.register_flow(flow_id, self)

    # -- application interface ---------------------------------------------

    def send_bytes(self, nbytes: int) -> int:
        """Queue ``nbytes`` for paced transmission; returns segments."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes!r}")
        segments = -(-nbytes // self.mss_bytes)
        self.target += segments
        self._start_timers()
        self._kick_pacing()
        return segments

    def all_acked(self) -> bool:
        """Whether everything queued has been acknowledged."""
        return self.snd_una >= self.target

    @property
    def smoothed_rtt(self) -> Optional[float]:
        """Current SRTT estimate, or None before the first sample."""
        return self._srtt

    # -- packet handling ----------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Handle an arriving ACK (delivery accounting + CNP handling)."""
        if not packet.is_ack:
            raise RuntimeError(f"rate sender for {self.flow_id} got data: {packet!r}")
        ack = packet.seq
        if ack > self.snd_una:
            newly = ack - self.snd_una
            sent = self._send_times.pop(ack - 1, None)
            if sent is not None:
                sample = self.sim.now - sent
                self._srtt = sample if self._srtt is None else 0.875 * self._srtt + 0.125 * sample
            for seq in range(self.snd_una, ack - 1):
                self._send_times.pop(seq, None)
            self.snd_una = ack
            self.controller.observe_delivery(
                self.sim.now, newly * self.mss_bytes, self._srtt
            )
        if packet.ecn_echo and self.sim.now - self._last_cnp_time >= self.cnp_interval:
            self._last_cnp_time = self.sim.now
            self.controller.on_congestion()
        DEFAULT_POOL.release(packet)
        if self.all_acked() and self.target > 0:
            self._stop_timers()
            if self.on_all_acked is not None:
                self.on_all_acked()

    # -- internals ------------------------------------------------------------

    def _kick_pacing(self) -> None:
        if not self._emitting and self.snd_nxt < self.target:
            self._emitting = True
            self._emit()

    def _emit(self) -> None:
        if self.snd_nxt >= self.target:
            self._emitting = False
            return
        packet = DEFAULT_POOL.acquire(
            flow_id=self.flow_id,
            src=self.host.name,
            dst=self.peer,
            is_ack=False,
            seq=self.snd_nxt,
            payload_bytes=self.mss_bytes,
            sent_time=self.sim.now,
            ecn_capable=True,
        )
        self._send_times[self.snd_nxt] = self.sim.now
        self.snd_nxt += 1
        self.segments_sent += 1
        self.host.send(packet)
        gap = packet.size_bits / self.controller.current_rate_bps
        self.sim.schedule(gap, self._emit)

    def _start_timers(self) -> None:
        if self._alpha_handle is None:
            self._alpha_handle = self.sim.schedule(self.alpha_timer, self._on_alpha)
        if self._rate_handle is None:
            self._rate_handle = self.sim.schedule(self.rate_timer, self._on_rate)

    def _stop_timers(self) -> None:
        if self._alpha_handle is not None:
            self.sim.cancel(self._alpha_handle)
            self._alpha_handle = None
        if self._rate_handle is not None:
            self.sim.cancel(self._rate_handle)
            self._rate_handle = None

    def _on_alpha(self) -> None:
        self.controller.on_alpha_timer()
        self._alpha_handle = self.sim.schedule(self.alpha_timer, self._on_alpha)

    def _on_rate(self) -> None:
        self.controller.on_rate_timer()
        self._rate_handle = self.sim.schedule(self.rate_timer, self._on_rate)

"""Transport layer: TCP variants, MLTCP augmentations, rate-based DCQCN."""

from .base import DEFAULT_MSS_BYTES, CongestionControl, TcpReceiver, TcpSender
from .classes import TrafficClassRegistry, default_registry
from .cubic import CubicCC
from .dcqcn import DcqcnController, MltcpDcqcnController, RateSender
from .dctcp import DctcpCC
from .pfabric import PFabricSender
from .mltcp import MLTCPCubic, MLTCPDctcp, MLTCPReno, MltcpState
from .reno import RenoCC
from .swift import MLTCPSwift, SwiftCC

__all__ = [
    "CongestionControl",
    "TcpSender",
    "TcpReceiver",
    "DEFAULT_MSS_BYTES",
    "RenoCC",
    "CubicCC",
    "DctcpCC",
    "MLTCPReno",
    "MLTCPCubic",
    "MLTCPDctcp",
    "MltcpState",
    "DcqcnController",
    "MltcpDcqcnController",
    "RateSender",
    "PFabricSender",
    "TrafficClassRegistry",
    "default_registry",
    "SwiftCC",
    "MLTCPSwift",
]

"""MLTCP congestion-control variants (paper §3, Algorithm 1).

Each MLTCP-X class derives from its base algorithm X and does exactly two
things, mirroring the paper's kernel module:

1. On every ACK it feeds the :class:`~repro.core.iteration.IterationTracker`
   (Algorithm 1's state: ``bytes_sent``, ``bytes_ratio``, iteration-boundary
   detection via ACK gaps, optional online learning of TOTAL_BYTES and
   COMP_TIME).
2. It scales the base algorithm's window-increase step by
   ``F(bytes_ratio)`` — Eq. 1 for Reno, and "other congestion control
   schemes are augmented in a similar way" (§6) for CUBIC and DCTCP.

Everything else — slow start, loss recovery, timers — is inherited
unchanged, which is the paper's deployability argument.
"""

from __future__ import annotations

from ..core.config import MLTCPConfig
from ..core.iteration import IterationTracker
from .base import CongestionControl, TcpSender
from .cubic import CubicCC
from .dctcp import DctcpCC
from .reno import RenoCC

__all__ = ["MltcpState", "MLTCPReno", "MLTCPCubic", "MLTCPDctcp"]


class MltcpState:
    """Per-flow MLTCP bookkeeping shared by all MLTCP-X variants."""

    def __init__(self, config: MLTCPConfig | None = None) -> None:
        self.config = config if config is not None else MLTCPConfig()
        self.tracker = IterationTracker(self.config)

    def observe_ack(self, newly_acked: int, conn: TcpSender) -> None:
        """Algorithm 1 lines 7–17: update bytes_sent / bytes_ratio."""
        self.tracker.on_ack(
            now=conn.sim.now,
            acked_bytes=newly_acked * conn.mss_bytes,
            smoothed_rtt=conn.smoothed_rtt,
        )

    def aggressiveness(self) -> float:
        """``F(bytes_ratio)`` with the current tracker state."""
        return self.tracker.aggressiveness()

    def reset_iteration(self, now: float) -> None:
        """Drop Algorithm 1's progress state at an iteration abort.

        A killed-and-restarted job begins a *fresh* iteration: carrying the
        aborted iteration's ``bytes_sent`` forward would make the restarted
        flow look late in its collective and therefore unduly aggressive.
        The tracker treats the abort as an iteration boundary, so
        ``bytes_sent`` and ``bytes_ratio`` restart from zero.
        """
        self.tracker.notify_iteration_boundary(now)


class _MltcpMixin(CongestionControl):
    """Shared plumbing: construct state, wire the two hooks.

    Declares :class:`CongestionControl` as its base so the cooperative
    ``super().__init__()`` / ``super().on_transfer_abort()`` calls are
    statically known to resolve; in the concrete MLTCP-X classes the MRO
    places the base algorithm X between this mixin and
    :class:`CongestionControl`, so X's hooks still run.
    """

    def __init__(self, config: MLTCPConfig | None = None) -> None:
        super().__init__()
        self.mltcp = MltcpState(config)

    def _observe(self, newly_acked: int, conn: TcpSender) -> None:
        self.mltcp.observe_ack(newly_acked, conn)

    def _ai_scale(self, conn: TcpSender) -> float:
        return self.mltcp.aggressiveness()

    def on_transfer_abort(self, conn: TcpSender) -> None:
        """Iteration aborted (job kill/restart): reset ``bytes_sent``."""
        super().on_transfer_abort(conn)
        self.mltcp.reset_iteration(conn.sim.now)


class MLTCPReno(_MltcpMixin, RenoCC):
    """MLTCP-Reno: Algorithm 1 — ``cwnd += F(bytes_ratio) * num_acks/cwnd``."""

    name = "mltcp-reno"


class MLTCPCubic(_MltcpMixin, CubicCC):
    """MLTCP-CUBIC: the cubic increment scaled by ``F(bytes_ratio)``."""

    name = "mltcp-cubic"


class MLTCPDctcp(_MltcpMixin, DctcpCC):
    """MLTCP-DCTCP: DCTCP's additive increase scaled by ``F(bytes_ratio)``."""

    name = "mltcp-dctcp"

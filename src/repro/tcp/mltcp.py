"""MLTCP congestion-control variants (paper §3, Algorithm 1).

Each MLTCP-X class derives from its base algorithm X and does exactly two
things, mirroring the paper's kernel module:

1. On every ACK it feeds the :class:`~repro.core.iteration.IterationTracker`
   (Algorithm 1's state: ``bytes_sent``, ``bytes_ratio``, iteration-boundary
   detection via ACK gaps, optional online learning of TOTAL_BYTES and
   COMP_TIME).
2. It scales the base algorithm's window-increase step by
   ``F(bytes_ratio)`` — Eq. 1 for Reno, and "other congestion control
   schemes are augmented in a similar way" (§6) for CUBIC and DCTCP.

Everything else — slow start, loss recovery, timers — is inherited
unchanged, which is the paper's deployability argument.

Robustness (beyond the paper, docs/ROBUSTNESS.md): when the tracker flags
its TOTAL_BYTES estimate unreliable, :meth:`MltcpState.aggressiveness`
clamps ``F`` to exactly 1, which makes every MLTCP-X behave as its vanilla
base algorithm until the tracker re-earns trust.  Episodes are recorded in
:attr:`MltcpState.degradation_episodes` and, when a
:class:`~repro.guards.core.GuardRail` is attached, reported with
``fallback_engaged=True`` (degrading *is* the graceful path, so it never
raises even under the ``raise`` policy).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.config import MLTCPConfig
from ..core.iteration import IterationTracker
from .base import CongestionControl, TcpSender
from .cubic import CubicCC
from .dctcp import DctcpCC
from .reno import RenoCC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..guards.core import GuardRail

__all__ = [
    "DEGRADED_AGGRESSIVENESS",
    "MltcpState",
    "MLTCPReno",
    "MLTCPCubic",
    "MLTCPDctcp",
]

#: The aggressiveness used while the tracker's estimate is unreliable.
#: Exactly 1 by construction — it makes Eq. 1 collapse to the base
#: algorithm's additive increase, so a degraded MLTCP-X *is* vanilla X.
#: The bounded-model-checking layer mirrors this constant and proves the
#: step-equivalence (``repro verify`` degradation-safety property); lint
#: rule MDL001 keeps the mirror in sync.
DEGRADED_AGGRESSIVENESS = 1.0


class MltcpState:
    """Per-flow MLTCP bookkeeping shared by all MLTCP-X variants."""

    def __init__(self, config: MLTCPConfig | None = None) -> None:
        self.config = config if config is not None else MLTCPConfig()
        self.tracker = IterationTracker(self.config)
        self.guardrail: Optional["GuardRail"] = None
        #: Completed and open degradation episodes, oldest first:
        #: ``{"flow", "reason", "start", "end"}`` with ``end is None`` while
        #: the episode is still open.
        self.degradation_episodes: list[dict] = []

    def attach_guardrail(self, rail: "GuardRail") -> None:
        """Report degradation transitions to ``rail`` from now on."""
        self.guardrail = rail

    @property
    def degraded(self) -> bool:
        """Whether F is currently clamped to 1 (vanilla base CC)."""
        return self.tracker.estimate_unreliable

    def observe_ack(self, newly_acked: int, conn: TcpSender) -> None:
        """Algorithm 1 lines 7–17: update bytes_sent / bytes_ratio."""
        self.tracker.on_ack(
            now=conn.sim.now,
            acked_bytes=newly_acked * conn.mss_bytes,
            smoothed_rtt=conn.smoothed_rtt,
        )
        # Test doubles may omit flow_id; the label is cosmetic here.
        self._sync_degradation(conn.sim.now, getattr(conn, "flow_id", ""))

    def aggressiveness(self) -> float:
        """``F(bytes_ratio)``, clamped to 1 (vanilla CC) while degraded."""
        if self.tracker.estimate_unreliable:
            return DEGRADED_AGGRESSIVENESS
        return self.tracker.aggressiveness()

    def reset_iteration(self, now: float, flow: str = "") -> None:
        """Drop *all* Algorithm 1 state at a job kill/restart.

        A killed-and-restarted job begins a fresh iteration AND a fresh
        training run: carrying the aborted iteration's ``bytes_sent``
        forward would make the restarted flow look late in its collective,
        and learned TOTAL_BYTES/COMP_TIME estimates describe a run that no
        longer exists (learning from the aborted partial iteration would
        poison them).  :meth:`IterationTracker.reset_after_restart` discards
        everything and — when learned estimates were in use — flags the
        estimate unreliable, which degrades this flow to vanilla CC until
        re-learning completes.
        """
        self.tracker.reset_after_restart(now)
        self._sync_degradation(now, flow)

    def _sync_degradation(self, now: float, flow: str) -> None:
        """Mirror the tracker's reliability flag into the episode log."""
        open_episode = bool(
            self.degradation_episodes
            and self.degradation_episodes[-1]["end"] is None
        )
        if self.tracker.estimate_unreliable and not open_episode:
            reason = self.tracker.unreliable_reason or "unknown"
            self.degradation_episodes.append(
                {"flow": flow, "reason": reason, "start": now, "end": None}
            )
            if self.guardrail is not None:
                self.guardrail.violation(
                    "tracker-sanity",
                    flow,
                    now,
                    f"estimate unreliable ({reason}); degraded to vanilla CC",
                    fallback_engaged=True,
                )
        elif not self.tracker.estimate_unreliable and open_episode:
            self.degradation_episodes[-1]["end"] = now


class _MltcpMixin(CongestionControl):
    """Shared plumbing: construct state, wire the two hooks.

    Declares :class:`CongestionControl` as its base so the cooperative
    ``super().__init__()`` / ``super().on_transfer_abort()`` calls are
    statically known to resolve; in the concrete MLTCP-X classes the MRO
    places the base algorithm X between this mixin and
    :class:`CongestionControl`, so X's hooks still run.
    """

    def __init__(self, config: MLTCPConfig | None = None) -> None:
        super().__init__()
        self.mltcp = MltcpState(config)

    def _observe(self, newly_acked: int, conn: TcpSender) -> None:
        self.mltcp.observe_ack(newly_acked, conn)

    def _ai_scale(self, conn: TcpSender) -> float:
        return self.mltcp.aggressiveness()

    def on_transfer_abort(self, conn: TcpSender) -> None:
        """Transfer aborted (job kill/restart): full Algorithm 1 reset."""
        super().on_transfer_abort(conn)
        self.mltcp.reset_iteration(conn.sim.now, getattr(conn, "flow_id", ""))


class MLTCPReno(_MltcpMixin, RenoCC):
    """MLTCP-Reno: Algorithm 1 — ``cwnd += F(bytes_ratio) * num_acks/cwnd``."""

    name = "mltcp-reno"


class MLTCPCubic(_MltcpMixin, CubicCC):
    """MLTCP-CUBIC: the cubic increment scaled by ``F(bytes_ratio)``."""

    name = "mltcp-cubic"


class MLTCPDctcp(_MltcpMixin, DctcpCC):
    """MLTCP-DCTCP: DCTCP's additive increase scaled by ``F(bytes_ratio)``."""

    name = "mltcp-dctcp"

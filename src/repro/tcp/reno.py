"""TCP Reno congestion control (the algorithm MLTCP augments, §3.1).

Slow start doubles the window each RTT; congestion avoidance adds
``num_acks / cwnd`` per cumulative ACK — exactly the step MLTCP scales by
``F(bytes_ratio)`` in Eq. 1.  Loss handling (halving, fast recovery) lives
in :class:`~repro.tcp.base.CongestionControl`.
"""

from __future__ import annotations

from .base import CongestionControl, TcpSender

__all__ = ["RenoCC"]


class RenoCC(CongestionControl):
    """Classic Reno AIMD with NewReno recovery semantics."""

    name = "reno"

    def on_ack(self, newly_acked: int, conn: TcpSender) -> None:
        """Slow start below ssthresh; additive increase (Eq. 1) above."""
        self._observe(newly_acked, conn)
        if self.in_slow_start:
            # Exponential growth, clamped so we do not overshoot far past
            # ssthresh within a single ACK.
            self.cwnd = min(self.cwnd + newly_acked, self.ssthresh + newly_acked)
            return
        # Additive increase: Eq. 1 with F == _ai_scale() (1.0 for plain Reno).
        self.cwnd += self._ai_scale(conn) * newly_acked / self.cwnd

    # -- hooks MLTCP overrides ---------------------------------------------

    def _observe(self, newly_acked: int, conn: TcpSender) -> None:
        """Per-ACK observation hook (MLTCP feeds its iteration tracker)."""

    def _ai_scale(self, conn: TcpSender) -> float:
        """Additive-increase scale; plain Reno is 1, MLTCP is F(bytes_ratio)."""
        return 1.0

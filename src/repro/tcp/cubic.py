"""TCP CUBIC congestion control.

CUBIC grows the window along ``W(t) = C*(t - K)^3 + W_max`` where ``t`` is
the time since the last decrease and ``K = cbrt(W_max * (1 - beta) / C)``.
The per-ACK increment toward that cubic target is the step MLTCP-CUBIC
scales by ``F(bytes_ratio)`` — the paper notes "other congestion control
schemes are augmented in a similar way" (§6).

Simplifications vs Linux: no TCP-friendly (Reno-emulation) region and no
HyStart; neither affects the window dynamics at the datacenter RTTs and
window sizes exercised here.
"""

from __future__ import annotations

from .base import CongestionControl, MIN_CWND, TcpSender

__all__ = ["CubicCC"]


class CubicCC(CongestionControl):
    """CUBIC window growth with beta = 0.7 and C = 0.4 (Linux defaults)."""

    name = "cubic"

    #: Cubic scaling constant (windows per second cubed).
    C = 0.4
    #: Multiplicative-decrease factor.
    BETA = 0.7

    def __init__(self) -> None:
        super().__init__()
        self._w_max = 0.0
        self._epoch_start: float | None = None
        self._k = 0.0

    def on_ack(self, newly_acked: int, conn: TcpSender) -> None:
        """Grow toward the cubic target W(t); slow start below ssthresh."""
        self._observe(newly_acked, conn)
        if self.in_slow_start:
            self.cwnd = min(self.cwnd + newly_acked, self.ssthresh + newly_acked)
            return
        now = conn.sim.now
        if self._epoch_start is None:
            self._epoch_start = now
            self._w_max = max(self._w_max, self.cwnd)
            self._k = ((self._w_max * (1.0 - self.BETA)) / self.C) ** (1.0 / 3.0)
        rtt = conn.smoothed_rtt or 0.0
        t = now - self._epoch_start + rtt
        target = self.C * (t - self._k) ** 3 + self._w_max
        if target > self.cwnd:
            increment = (target - self.cwnd) / self.cwnd
        else:
            # Below the cubic curve: probe very gently (Linux's 1% regime).
            increment = 0.01 / self.cwnd
        self.cwnd += self._ai_scale(conn) * increment * newly_acked

    def on_fast_retransmit(self, conn: TcpSender) -> None:
        """Multiplicative decrease by beta; remember W_max for the cubic."""
        self._register_loss()
        self.ssthresh = max(self.cwnd * self.BETA, 2.0)
        self.cwnd = self.ssthresh + 3.0

    def on_recovery_exit(self, conn: TcpSender) -> None:
        """Deflate to ssthresh when the recovery point is fully acked."""
        self.cwnd = max(MIN_CWND, self.ssthresh)

    def on_rto(self, conn: TcpSender) -> None:
        """Timeout: record the loss epoch, then collapse like the base."""
        self._register_loss()
        super().on_rto(conn)

    # -- hooks MLTCP overrides ---------------------------------------------

    def _observe(self, newly_acked: int, conn: TcpSender) -> None:
        """Per-ACK observation hook (MLTCP feeds its iteration tracker)."""

    def _ai_scale(self, conn: TcpSender) -> float:
        """Window-increase scale; 1 for plain CUBIC, F(bytes_ratio) for MLTCP."""
        return 1.0

    # -- internals ----------------------------------------------------------

    def _register_loss(self) -> None:
        self._w_max = self.cwnd
        self._epoch_start = None

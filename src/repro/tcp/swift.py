"""Swift-style delay-based congestion control + MLTCP-Swift.

Swift (Kumar et al., SIGCOMM '20) keeps the RTT near a target delay:
below target the window grows additively, above target it is reduced
multiplicatively in proportion to the excess delay (at most once per RTT).
It is the modern datacenter representative of the delay-based family the
paper's related work cites (TIMELY, DX, Vegas); MLTCP-Swift scales the
additive-increase step by ``F(bytes_ratio)``, exactly like MLTCP-Reno does
for loss-based AIMD (§6: "other congestion control schemes are augmented in
a similar way").

Simplifications vs the paper's Swift: a single fixed target delay (no
topology-scaled term), no pacing below cwnd = 1, loss handling inherited
from the base class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import CongestionControl, MIN_CWND, TcpSender

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import MLTCPConfig

__all__ = ["SwiftCC", "MLTCPSwift"]


class SwiftCC(CongestionControl):
    """Delay-target AIMD: grow below ``target_delay``, back off above it."""

    name = "swift"

    def __init__(
        self,
        target_delay: float = 400e-6,
        ai: float = 1.0,
        beta: float = 0.8,
        max_mdf: float = 0.5,
    ) -> None:
        super().__init__()
        if target_delay <= 0:
            raise ValueError(f"target_delay must be positive, got {target_delay!r}")
        if ai <= 0:
            raise ValueError(f"ai must be positive, got {ai!r}")
        if not 0 < beta < 1:
            raise ValueError(f"beta must be in (0, 1), got {beta!r}")
        if not 0 < max_mdf < 1:
            raise ValueError(f"max_mdf must be in (0, 1), got {max_mdf!r}")
        self.target_delay = target_delay
        self.ai = ai
        self.beta = beta
        self.max_mdf = max_mdf
        self._last_decrease_time = -float("inf")

    def on_ack(self, newly_acked: int, conn: TcpSender) -> None:
        """Grow below the delay target; back off proportionally above it."""
        self._observe(newly_acked, conn)
        rtt = conn.smoothed_rtt
        if rtt is None:
            # No sample yet: conservative slow-start-style growth.
            self.cwnd += newly_acked
            return
        if rtt <= self.target_delay:
            if self.in_slow_start:
                self.cwnd = min(self.cwnd + newly_acked, self.ssthresh + newly_acked)
            else:
                self.cwnd += self._ai_scale(conn) * self.ai * newly_acked / self.cwnd
            return
        # Above target: decrease proportionally to excess, once per RTT.
        now = conn.sim.now
        if now - self._last_decrease_time < rtt:
            return
        self._last_decrease_time = now
        excess = min(self.max_mdf, self.beta * (rtt - self.target_delay) / rtt)
        self.cwnd = max(MIN_CWND, self.cwnd * (1.0 - excess))
        self.ssthresh = min(self.ssthresh, self.cwnd)

    # -- hooks MLTCP overrides ---------------------------------------------

    def _observe(self, newly_acked: int, conn: TcpSender) -> None:
        """Per-ACK observation hook (MLTCP feeds its iteration tracker)."""

    def _ai_scale(self, conn: TcpSender) -> float:
        """Additive-increase scale; 1 for Swift, F(bytes_ratio) for MLTCP."""
        return 1.0


class MLTCPSwift(SwiftCC):
    """Swift with the additive increase scaled by ``F(bytes_ratio)``."""

    name = "mltcp-swift"

    def __init__(
        self,
        config: "MLTCPConfig | None" = None,
        target_delay: float = 400e-6,
        ai: float = 1.0,
        beta: float = 0.8,
        max_mdf: float = 0.5,
    ) -> None:
        from ..core.config import MLTCPConfig
        from .mltcp import MltcpState

        super().__init__(
            target_delay=target_delay, ai=ai, beta=beta, max_mdf=max_mdf
        )
        self.mltcp = MltcpState(config if config is not None else MLTCPConfig())

    def _observe(self, newly_acked: int, conn: TcpSender) -> None:
        self.mltcp.observe_ack(newly_acked, conn)

    def _ai_scale(self, conn: TcpSender) -> float:
        return self.mltcp.aggressiveness()

    def on_transfer_abort(self, conn: TcpSender) -> None:
        """Transfer aborted (job kill/restart): full Algorithm 1 reset."""
        super().on_transfer_abort(conn)
        self.mltcp.reset_iteration(conn.sim.now, getattr(conn, "flow_id", ""))

"""Per-traffic-class congestion-control selection (paper §5).

"To safeguard high-priority legacy TCP traffic, we modify NCCL's FAST
socket plugin to support selecting a desired congestion control algorithm.
This allows for choosing different aggressiveness functions for different
classes of traffic.  For latency-sensitive traffic, in order to acquire most
of the bandwidth, we recommend using a bandwidth aggressiveness function
with larger values."

:class:`TrafficClassRegistry` is the library analogue of that plugin hook: a
named map from traffic class to a congestion-control factory, with the
paper's three roles pre-registered:

* ``ml`` — MLTCP-Reno with the paper's linear function (needs the job's
  iteration shape);
* ``legacy`` — plain TCP Reno;
* ``latency`` — MLTCP-Reno pinned to a large constant aggressiveness, so
  short latency-sensitive flows out-compete the ML bulk traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.aggressiveness import ConstantAggressiveness
from ..core.config import MLTCPConfig
from ..workloads.job import JobSpec
from .base import CongestionControl
from .mltcp import MLTCPReno
from .reno import RenoCC

__all__ = ["CcFactory", "TrafficClassRegistry", "default_registry", "LATENCY_AGGRESSIVENESS"]

CcFactory = Callable[[Optional[JobSpec]], CongestionControl]

#: The constant weight recommended for latency-sensitive traffic; above the
#: ML class's maximum (slope + intercept = 2.0), so shorts win contention.
LATENCY_AGGRESSIVENESS = 3.0


class TrafficClassRegistry:
    """Named congestion-control factories, one per traffic class."""

    def __init__(self) -> None:
        self._factories: dict[str, CcFactory] = {}

    def register(self, traffic_class: str, factory: CcFactory) -> None:
        """Register (or replace) the factory for ``traffic_class``."""
        if not traffic_class:
            raise ValueError("traffic_class must be non-empty")
        self._factories[traffic_class] = factory

    def classes(self) -> list[str]:
        """Registered class names, sorted."""
        return sorted(self._factories)

    def create(
        self, traffic_class: str, job: Optional[JobSpec] = None
    ) -> CongestionControl:
        """Build a fresh congestion-control instance for one flow."""
        try:
            factory = self._factories[traffic_class]
        except KeyError:
            raise KeyError(
                f"unknown traffic class {traffic_class!r}; registered: "
                f"{self.classes()}"
            ) from None
        return factory(job)


def _ml_factory(job: Optional[JobSpec]) -> CongestionControl:
    if job is None:
        # No shape information: learn TOTAL_BYTES / COMP_TIME online (§3.2).
        return MLTCPReno(MLTCPConfig())
    return MLTCPReno(
        MLTCPConfig(
            total_bytes=job.comm_bytes,
            comp_time=max(1e-4, 0.3 * job.compute_time),
        )
    )


def _legacy_factory(job: Optional[JobSpec]) -> CongestionControl:
    return RenoCC()


def _latency_factory(job: Optional[JobSpec]) -> CongestionControl:
    config = MLTCPConfig(
        function=ConstantAggressiveness(LATENCY_AGGRESSIVENESS),
        total_bytes=1,       # ratio saturates immediately: constant weight
        comp_time=1e9,       # no iteration structure for request traffic
        # total_bytes=1 is a constant-weight trick, not an estimate of the
        # real volume; the missed-boundary guard must not condemn it.
        degrade_on_unreliable=False,
    )
    return MLTCPReno(config)


def default_registry() -> TrafficClassRegistry:
    """The paper's three classes, pre-registered."""
    registry = TrafficClassRegistry()
    registry.register("ml", _ml_factory)
    registry.register("legacy", _legacy_factory)
    registry.register("latency", _latency_factory)
    return registry

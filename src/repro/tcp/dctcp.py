"""DCTCP congestion control (ECN-proportional decrease).

DCTCP keeps an EWMA ``alpha`` of the fraction of ECN-marked bytes per
window and reduces ``cwnd`` by ``alpha / 2`` once per RTT when marks were
seen, instead of Reno's blunt halving.  Growth is Reno-like, so the MLTCP
augmentation point — scaling the additive-increase step by
``F(bytes_ratio)`` — is identical.
"""

from __future__ import annotations

from .base import CongestionControl, MIN_CWND, TcpSender

__all__ = ["DctcpCC"]


class DctcpCC(CongestionControl):
    """DCTCP with g = 1/16 and per-window proportional decrease."""

    name = "dctcp"
    ecn_enabled = True

    #: EWMA gain for the marked fraction.
    G = 1.0 / 16.0

    def __init__(self) -> None:
        super().__init__()
        self.alpha = 0.0
        self._window_end = 0
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._last_newly_acked = 0

    def on_ack(self, newly_acked: int, conn: TcpSender) -> None:
        """Reno-style growth plus per-window alpha bookkeeping."""
        self._observe(newly_acked, conn)
        self._last_newly_acked = newly_acked
        self._acked_in_window += newly_acked
        if conn.snd_una >= self._window_end:
            self._end_window(conn)
        if self.in_slow_start:
            self.cwnd = min(self.cwnd + newly_acked, self.ssthresh + newly_acked)
            return
        self.cwnd += self._ai_scale(conn) * newly_acked / self.cwnd

    def on_ecn_echo(self, echoed: int, total: int, conn: TcpSender) -> None:
        """Count marked bytes; end slow start on the first mark."""
        # Called right after on_ack for the same cumulative ACK; attribute
        # the newly acked segments of that ACK to the marked count.
        self._marked_in_window += self._last_newly_acked
        if self.in_slow_start:
            # Marks end slow start immediately (as in the DCTCP paper).
            self.ssthresh = min(self.ssthresh, self.cwnd)

    # -- hooks MLTCP overrides ---------------------------------------------

    def _observe(self, newly_acked: int, conn: TcpSender) -> None:
        """Per-ACK observation hook (MLTCP feeds its iteration tracker)."""

    def _ai_scale(self, conn: TcpSender) -> float:
        """Additive-increase scale; 1 for plain DCTCP, F(bytes_ratio) for MLTCP."""
        return 1.0

    # -- internals ----------------------------------------------------------

    def _end_window(self, conn: TcpSender) -> None:
        if self._acked_in_window > 0:
            fraction = min(1.0, self._marked_in_window / self._acked_in_window)
            self.alpha = (1.0 - self.G) * self.alpha + self.G * fraction
            if self._marked_in_window > 0:
                self.cwnd = max(MIN_CWND, self.cwnd * (1.0 - self.alpha / 2.0))
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_end = conn.snd_una + max(1, int(self.cwnd))

"""TCP connection machinery for the packet-level simulator.

:class:`TcpSender` and :class:`TcpReceiver` implement the transport the
paper's kernel module plugs into: MSS-sized segments, cumulative immediate
ACKs, duplicate-ACK fast retransmit with NewReno-style partial-ACK recovery,
and an RFC 6298 retransmission timer with Karn's rule and exponential
backoff.  Congestion control is pluggable via :class:`CongestionControl`
(mirroring Linux's pluggable congestion modules, which is exactly the hook
MLTCP uses — paper §3.2).

Windows are counted in *segments*, "following Linux's implementation …
the congestion window (cwnd) is expressed in packets" (§3.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional

from ..simulator.engine import EventEntry, Simulator
from ..simulator.node import Host
from ..simulator.packet import DEFAULT_POOL, Packet

__all__ = ["CongestionControl", "TcpSender", "TcpReceiver", "DEFAULT_MSS_BYTES"]

#: Default maximum segment size (payload bytes), the paper's MTU assumption.
DEFAULT_MSS_BYTES = 1460

#: Initial congestion window in segments (Linux default, RFC 6928).
INITIAL_CWND = 10.0

#: Minimum congestion window after any reduction.
MIN_CWND = 1.0


class CongestionControl(ABC):
    """Pluggable congestion-control algorithm.

    The algorithm owns ``cwnd`` (float, segments) and ``ssthresh``; the
    connection reads ``cwnd`` to clock transmissions and calls the hooks on
    protocol events.
    """

    #: Whether data packets should be marked ECN-capable.
    ecn_enabled: bool = False
    name: str = "cc"

    def __init__(self) -> None:
        self.cwnd: float = INITIAL_CWND
        self.ssthresh: float = float("inf")

    @abstractmethod
    def on_ack(self, newly_acked: int, conn: "TcpSender") -> None:
        """New data acknowledged (``newly_acked`` segments, ``num_acks``)."""

    def on_fast_retransmit(self, conn: "TcpSender") -> None:
        """Triple-duplicate-ACK loss: multiplicative decrease + recovery."""
        self.ssthresh = max(conn.flight_size() / 2.0, 2.0)
        self.cwnd = self.ssthresh + 3.0

    def on_dup_ack_in_recovery(self, conn: "TcpSender") -> None:
        """Window inflation for each further dup ACK during fast recovery."""
        self.cwnd += 1.0

    def on_partial_ack(self, newly_acked: int, conn: "TcpSender") -> None:
        """NewReno partial ACK: deflate by the amount acked, keep recovering."""
        self.cwnd = max(MIN_CWND, self.cwnd - newly_acked + 1.0)

    def on_recovery_exit(self, conn: "TcpSender") -> None:
        """Full ACK of the recovery point: deflate to ssthresh."""
        self.cwnd = max(MIN_CWND, self.ssthresh)

    def on_rto(self, conn: "TcpSender") -> None:
        """Retransmission timeout: collapse to one segment, slow start."""
        self.ssthresh = max(conn.flight_size() / 2.0, 2.0)
        self.cwnd = MIN_CWND

    def on_ecn_echo(self, echoed: int, total: int, conn: "TcpSender") -> None:
        """ECN feedback for one window (DCTCP-style algorithms override)."""

    def on_transfer_abort(self, conn: "TcpSender") -> None:
        """The application aborted mid-transfer (job kill/restart).

        Base algorithms carry no per-iteration state, so the default is a
        no-op; MLTCP variants override it to reset Algorithm 1's
        ``bytes_sent`` so the aborted iteration's progress cannot leak an
        aggressiveness advantage into the restarted one.
        """

    @property
    def in_slow_start(self) -> bool:
        """Whether the window is still below the slow-start threshold."""
        return self.cwnd < self.ssthresh


class TcpReceiver:
    """Receive side: in-order reassembly and cumulative ACK generation.

    ``delayed_ack`` enables RFC 1122-style ACK coalescing: an ACK is sent
    every ``delayed_ack`` in-order segments, or after ``delack_timeout``
    seconds, or immediately when a segment arrives out of order (so the
    sender's dup-ACK machinery keeps working).  Coalesced ACKs acknowledge
    multiple segments at once — exactly the cumulative-ACK case Algorithm 1
    handles with its ``num_acks`` term (paper §3.1: "a cumulative ack
    mechanism to acknowledge multiple in-flight packets with a single ack").
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        peer: str,
        delayed_ack: int = 1,
        delack_timeout: float = 500e-6,
    ) -> None:
        if delayed_ack < 1:
            raise ValueError(f"delayed_ack must be at least 1, got {delayed_ack!r}")
        if delack_timeout <= 0:
            raise ValueError(f"delack_timeout must be positive, got {delack_timeout!r}")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.peer = peer
        self.delayed_ack = delayed_ack
        self.delack_timeout = delack_timeout
        self.recv_next = 0
        self._out_of_order: set[int] = set()
        self.segments_received = 0
        self.acks_sent = 0
        self._unacked_segments = 0
        self._delack_timer: Optional[EventEntry] = None
        self._pending_echo = False
        self._pending_ts: Optional[float] = None
        self._pending_retransmitted = False
        host.register_flow(flow_id, self)

    def receive(self, packet: Packet) -> None:
        """Handle an arriving data segment; emit or schedule an ACK."""
        if packet.is_ack:
            raise RuntimeError(f"receiver for {self.flow_id} got an ACK: {packet!r}")
        self.segments_received += 1
        in_order = packet.seq == self.recv_next
        if in_order:
            self.recv_next += 1
            while self.recv_next in self._out_of_order:
                self._out_of_order.discard(self.recv_next)
                self.recv_next += 1
        elif packet.seq > self.recv_next:
            self._out_of_order.add(packet.seq)
        # seq < recv_next: duplicate of delivered data; still ACK it.

        # Remember timestamp/ECN state for the (possibly coalesced) ACK.
        self._pending_echo = self._pending_echo or packet.ecn_ce
        self._pending_ts = packet.sent_time
        self._pending_retransmitted = packet.retransmitted
        # The segment is fully consumed; recycle it (no-op for packets
        # that were not pool-acquired).
        DEFAULT_POOL.release(packet)

        if not in_order or self.delayed_ack == 1:
            # Out-of-order (or delack disabled): ACK immediately so the
            # sender sees duplicate ACKs without delay.
            self._send_ack()
            return
        self._unacked_segments += 1
        if self._unacked_segments >= self.delayed_ack:
            self._send_ack()
        elif self._delack_timer is None:
            self._delack_timer = self.sim.schedule(
                self.delack_timeout, self._on_delack_timeout
            )

    # -- internals ----------------------------------------------------------

    def _on_delack_timeout(self) -> None:
        self._delack_timer = None
        if self._unacked_segments > 0:
            self._send_ack()

    def _send_ack(self) -> None:
        if self._delack_timer is not None:
            self.sim.cancel(self._delack_timer)
            self._delack_timer = None
        self._unacked_segments = 0
        # The ACK echoes the newest data packet's original send time and
        # retransmission flag (RFC 1323 timestamps), so the sender can take
        # accurate RTT samples even across recovery episodes.
        ack = DEFAULT_POOL.acquire(
            flow_id=self.flow_id,
            src=self.host.name,
            dst=self.peer,
            is_ack=True,
            seq=self.recv_next,
            payload_bytes=0,
            ecn_echo=self._pending_echo,
            sent_time=self._pending_ts,
            retransmitted=self._pending_retransmitted,
        )
        self._pending_echo = False
        self.acks_sent += 1
        self.host.send(ack)

    def resync(self, seq: int) -> None:
        """Jump the cumulative-ACK point to ``seq`` (restart handshake).

        Called when the peer sender aborts a transfer (job kill/restart):
        the fresh transfer's segments continue the sequence space at the
        sender's ``snd_nxt``, so any segments of the dead transfer still
        missing would otherwise leave a hole ``recv_next`` can never cross.
        Models the new connection a restarted worker would open, without
        re-registering flows.
        """
        if seq < self.recv_next:
            raise ValueError(
                f"{self.flow_id}: cannot resync backwards "
                f"({seq} < {self.recv_next})"
            )
        self.recv_next = seq
        self._out_of_order = {s for s in self._out_of_order if s > seq}
        self._unacked_segments = 0
        if self._delack_timer is not None:
            self.sim.cancel(self._delack_timer)
            self._delack_timer = None


class TcpSender:
    """Send side of one flow: window clocking, loss recovery, timers."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        peer: str,
        cc: CongestionControl,
        mss_bytes: int = DEFAULT_MSS_BYTES,
        min_rto: float = 2e-3,
        max_rto: float = 1.0,
        on_all_acked: Optional[Callable[[], None]] = None,
        slow_start_after_idle: bool = True,
    ) -> None:
        if mss_bytes <= 0:
            raise ValueError(f"mss_bytes must be positive, got {mss_bytes!r}")
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError(f"need 0 < min_rto <= max_rto, got {min_rto!r}, {max_rto!r}")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.peer = peer
        self.cc = cc
        self.mss_bytes = mss_bytes
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.on_all_acked = on_all_acked
        self.slow_start_after_idle = slow_start_after_idle
        self._last_activity = 0.0

        # Sequence state (segment indices).
        self.snd_una = 0  # oldest unacknowledged
        self.snd_nxt = 0  # next new segment to send
        self.target = 0   # segments the application has asked to deliver

        # Loss recovery.
        self.dup_acks = 0
        self.in_recovery = False
        self.recover_point = 0

        # RTT estimation (RFC 6298).
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = 4 * min_rto
        self._rto_backoff = 1.0
        self._rto_timer: Optional[EventEntry] = None
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()

        #: Peer receiver, wired by the experiment assembly (packetlab) so an
        #: aborted transfer can resync the cumulative-ACK point — the
        #: simulation stand-in for the new connection a restarted worker
        #: opens.  Optional: without it, abort_transfer still works but any
        #: hole left by in-flight segments of the dead transfer would stall
        #: the next one.
        self.peer_rx: Optional[TcpReceiver] = None

        # Telemetry.
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.transfers_aborted = 0
        self.acked_bytes_log: list[tuple[float, int]] = []
        #: Optional cwnd trace: (time, cwnd) appended on every new ACK when
        #: :attr:`record_cwnd` is set (off by default — it grows unbounded).
        self.record_cwnd = False
        self.cwnd_log: list[tuple[float, float]] = []

        host.register_flow(flow_id, self)

    # -- application interface --------------------------------------------

    def send_bytes(self, nbytes: int) -> int:
        """Queue ``nbytes`` for delivery; returns the segments enqueued."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes!r}")
        if (
            self.slow_start_after_idle
            and self.flight_size() == 0
            and self.sim.now - self._last_activity > self.rto
        ):
            # Linux tcp_slow_start_after_idle: restart from the initial
            # window after an idle period (the compute phase), so a flow's
            # history does not carry an incumbency advantage across
            # iterations.
            self.cc.cwnd = min(self.cc.cwnd, INITIAL_CWND)
        segments = -(-nbytes // self.mss_bytes)  # ceil division
        self.target += segments
        self._try_send()
        return segments

    def abort_transfer(self) -> int:
        """Abandon everything queued or in flight; returns the bytes dropped.

        Used by job kill/restart fault injection: the dead worker's data
        will never be needed, so the sender forgets it — timers cancelled,
        recovery state cleared, the send point advanced past every in-flight
        segment — and the congestion window falls back to the initial
        window (fresh-connection semantics).  The peer receiver, when wired
        via :attr:`peer_rx`, is resynced to the new sequence point so lost
        segments of the aborted transfer cannot stall the next one.  The
        congestion algorithm's :meth:`CongestionControl.on_transfer_abort`
        hook fires last (MLTCP resets ``bytes_sent`` there).
        """
        aborted_bytes = max(0, (self.target - self.snd_una)) * self.mss_bytes
        self._cancel_rto_timer()
        self.in_recovery = False
        self.dup_acks = 0
        self._rto_backoff = 1.0
        self._send_times.clear()
        self._retransmitted.clear()
        # Everything up to snd_nxt is either delivered or abandoned; the
        # next transfer continues the sequence space from here.
        self.snd_una = self.snd_nxt
        self.target = self.snd_nxt
        self.cc.cwnd = min(self.cc.cwnd, INITIAL_CWND)
        self._last_activity = self.sim.now
        self.transfers_aborted += 1
        if self.peer_rx is not None:
            self.peer_rx.resync(self.snd_nxt)
        self.cc.on_transfer_abort(self)
        return aborted_bytes

    def bytes_outstanding(self) -> int:
        """Bytes queued or in flight but not yet acknowledged."""
        return (self.target - self.snd_una) * self.mss_bytes

    def all_acked(self) -> bool:
        """Whether everything the application queued has been acknowledged."""
        return self.snd_una >= self.target

    def flight_size(self) -> int:
        """Segments in flight (sent, not yet cumulatively acknowledged)."""
        return self.snd_nxt - self.snd_una

    @property
    def smoothed_rtt(self) -> Optional[float]:
        """Current SRTT estimate, or None before the first sample."""
        return self.srtt

    # -- packet handling ---------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Handle an arriving ACK."""
        if not packet.is_ack:
            raise RuntimeError(f"sender for {self.flow_id} got data: {packet!r}")
        ack = packet.seq
        if ack > self.snd_una:
            self._on_new_ack(ack, packet)
        elif ack == self.snd_una and self.flight_size() > 0:
            self._on_dup_ack()
        DEFAULT_POOL.release(packet)
        self._try_send()

    # -- internals ----------------------------------------------------------

    def _on_new_ack(self, ack: int, packet: Packet) -> None:
        newly_acked = ack - self.snd_una
        self._sample_rtt(packet)
        for seq in range(self.snd_una, ack):
            self._send_times.pop(seq, None)
            self._retransmitted.discard(seq)
        self.snd_una = ack
        if ack > self.snd_nxt:
            # After an RTO rewinds snd_nxt (go-back-N), segments still in
            # flight can be acknowledged past the rewound send point; accept
            # the evidence of delivery and jump forward.
            self.snd_nxt = ack
        self._rto_backoff = 1.0

        if self.in_recovery:
            if ack >= self.recover_point:
                self.in_recovery = False
                self.dup_acks = 0
                self.cc.on_recovery_exit(self)
            else:
                # NewReno partial ACK: retransmit the next hole immediately.
                self.cc.on_partial_ack(newly_acked, self)
                self._retransmit(self.snd_una)
        else:
            self.dup_acks = 0
            self.cc.on_ack(newly_acked, self)
        if packet.ecn_echo:
            self.cc.on_ecn_echo(1, 1, self)

        self.acked_bytes_log.append((self.sim.now, newly_acked * self.mss_bytes))
        if self.record_cwnd:
            self.cwnd_log.append((self.sim.now, self.cc.cwnd))
        self._last_activity = self.sim.now
        self._restart_rto_timer()
        if self.all_acked() and self.on_all_acked is not None and self.target > 0:
            self._cancel_rto_timer()
            self.on_all_acked()

    def _on_dup_ack(self) -> None:
        self.dup_acks += 1
        if self.in_recovery:
            self.cc.on_dup_ack_in_recovery(self)
        elif self.dup_acks == 3:
            self.in_recovery = True
            self.recover_point = self.snd_nxt
            self.fast_retransmits += 1
            self.cc.on_fast_retransmit(self)
            self._retransmit(self.snd_una)

    def _try_send(self) -> None:
        window = int(self.cc.cwnd)
        while self.snd_nxt < self.target and self.snd_nxt < self.snd_una + window:
            self._transmit(self.snd_nxt, retransmission=False)
            self.snd_nxt += 1
        if self.flight_size() > 0 and self._rto_timer is None:
            self._restart_rto_timer()

    def _transmit(self, seq: int, retransmission: bool) -> None:
        packet = DEFAULT_POOL.acquire(
            flow_id=self.flow_id,
            src=self.host.name,
            dst=self.peer,
            is_ack=False,
            seq=seq,
            payload_bytes=self.mss_bytes,
            sent_time=self.sim.now,
            retransmitted=retransmission,
            ecn_capable=self.cc.ecn_enabled,
            priority=float(self.target - self.snd_una),
        )
        if retransmission:
            self.retransmissions += 1
            self._retransmitted.add(seq)
        else:
            self._send_times[seq] = self.sim.now
        self.segments_sent += 1
        self.host.send(packet)

    def _retransmit(self, seq: int) -> None:
        self._transmit(seq, retransmission=True)
        self._restart_rto_timer()

    def _sample_rtt(self, ack_packet: Packet) -> None:
        """Timestamp-echo sampling with Karn's rule: the ACK carries the
        triggering data packet's original send time; retransmitted segments
        give no sample."""
        if ack_packet.retransmitted or ack_packet.sent_time is None:
            return
        sample = self.sim.now - ack_packet.sent_time
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(
            self.max_rto, max(self.min_rto, self.srtt + 4.0 * (self.rttvar or 0.0))
        )

    def _restart_rto_timer(self) -> None:
        self._cancel_rto_timer()
        if self.flight_size() <= 0:
            return
        timeout = min(self.max_rto, self.rto * self._rto_backoff)
        self._rto_timer = self.sim.schedule(timeout, self._on_rto)

    def _cancel_rto_timer(self) -> None:
        if self._rto_timer is not None:
            self.sim.cancel(self._rto_timer)
            self._rto_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.flight_size() <= 0:
            return
        self.timeouts += 1
        self.cc.on_rto(self)
        self.in_recovery = False
        self.dup_acks = 0
        self._rto_backoff = min(64.0, self._rto_backoff * 2.0)
        # Go-back-N: rewind the send point and retransmit the first hole.
        self.snd_nxt = self.snd_una + 1
        self._retransmit(self.snd_una)
        self._try_send()

"""Docs smoke gate: execute the python code fences in markdown files.

Documentation examples rot silently — an import renamed, a parameter
dropped — unless something runs them.  ``repro docs-check`` extracts every
fenced code block whose info string is exactly ``python`` and executes the
fences of each file, in order, in one shared namespace (so a worked
example can build on earlier fences).  Errors are reported with the
markdown file and the absolute line inside it.

Fences that are deliberately *not* runnable — fragments with placeholder
variables, suppression examples — keep their syntax highlighting by using
the info string ``python no-check`` instead.  ``pycon`` / ``text`` fences
are never executed.

Wired into ``make docs-check`` (part of ``make verify``); exit codes
follow :mod:`repro.cliutil`: 0 when every fence runs, 1 when one raises,
2 when an input path cannot be read.
"""

from __future__ import annotations

import traceback
from pathlib import Path

__all__ = ["CodeFence", "extract_python_fences", "check_file", "run_docs_check"]

#: Info strings that mark an executable fence (exact match after strip).
_EXECUTABLE_INFOS = ("python", "py")


class CodeFence:
    """One fenced code block: where it starts and what it contains."""

    def __init__(self, path: Path, line: int, source: str) -> None:
        self.path = path
        #: 1-based line of the first code line (the line after the fence).
        self.line = line
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CodeFence({self.path}:{self.line})"


def extract_python_fences(path: Path) -> list[CodeFence]:
    """Executable python fences of one markdown file, in document order."""
    fences: list[CodeFence] = []
    info: str | None = None
    fence_marker: str | None = None
    buffer: list[str] = []
    start_line = 0
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        stripped = raw.strip()
        if fence_marker is None:
            if stripped.startswith("```") and stripped != "```":
                fence_marker = "```"
                info = stripped[3:].strip().lower()
                buffer = []
                start_line = lineno + 1
            elif stripped == "```":
                # An opening fence with no info string: not executable,
                # but we must still track it to find its closing fence.
                fence_marker = "```"
                info = ""
                buffer = []
                start_line = lineno + 1
        else:
            if stripped == "```":
                if info in _EXECUTABLE_INFOS:
                    fences.append(
                        CodeFence(path, start_line, "\n".join(buffer) + "\n")
                    )
                fence_marker = None
                info = None
            else:
                buffer.append(raw)
    return fences


def check_file(path: Path) -> list[str]:
    """Execute every python fence of one file; returns error strings.

    All fences of a file share one namespace, executed top to bottom, so
    later fences can use names an earlier fence defined — exactly how a
    reader follows a worked example.  Each fence is compiled with enough
    newline padding that tracebacks point at the markdown file's real
    line numbers.
    """
    errors: list[str] = []
    namespace: dict[str, object] = {"__name__": f"docscheck:{path.name}"}
    for fence in extract_python_fences(path):
        padded = "\n" * (fence.line - 1) + fence.source
        try:
            code = compile(padded, str(path), "exec")
            exec(code, namespace)  # noqa: S102 - the point of the gate
        except Exception as error:
            frame = traceback.extract_tb(error.__traceback__)[-1:]
            location = (
                f"{path}:{frame[0].lineno}"
                if frame and frame[0].filename == str(path)
                else f"{path}:{fence.line}"
            )
            errors.append(
                f"{location}: fence raised {type(error).__name__}: {error}"
            )
    return errors


def run_docs_check(paths: list[str]) -> int:
    """Execute the python fences under each path (file or directory).

    Directories are searched for ``*.md`` recursively, sorted.  Prints a
    per-file summary; returns a :mod:`repro.cliutil` exit code.
    """
    from .cliutil import EXIT_OK, fail, report_violations

    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.is_file():
            files.append(path)
        else:
            return fail(f"no such file or directory: {raw}")
    if not files:
        return fail(f"no markdown files under {paths!r}")

    all_errors: list[str] = []
    checked = 0
    for path in files:
        fences = extract_python_fences(path)
        if not fences:
            continue
        errors = check_file(path)
        status = "ok" if not errors else f"{len(errors)} error(s)"
        print(f"  {path}: {len(fences)} fence(s) {status}")
        checked += len(fences)
        all_errors.extend(errors)
    if all_errors:
        return report_violations(
            f"docs-check: {len(all_errors)} failing fence(s)", all_errors
        )
    print(f"docs-check: {checked} fence(s) across {len(files)} file(s) all pass")
    return EXIT_OK

"""Watchdogs: progress monitors for the engine and packet-sim installers.

Two complementary stall detectors exist:

* The engine's own monitored event loop (``Simulator(monitor=rail)``)
  checks *per event* that dispatch times never run backwards and that the
  clock keeps advancing (``stall_event_limit`` events at one timestamp is
  a zero-delay livelock).  Exact, but pays a branch per event.
* :class:`EngineWatchdog` here samples *per heartbeat*: between beats it
  bounds scheduling activity (an event storm that outruns
  ``max_events_per_interval`` is a livelock in wall-clock terms) and
  checks clock monotonicity.  Coarse, but nearly free.

The third layer — converting a *wall-clock* hang into a
:class:`repro.harness.runner.FailedPoint` — lives in the experiment
runner's per-point timeout machinery and is surfaced through the
telemetry ``guards.watchdog_fires`` section (docs/ROBUSTNESS.md).

:func:`install_packet_guards` wires the periodic packet-substrate checks
(cwnd bounds, link conservation, tracker sanity) onto a simulation as
ordinary heartbeat events, so the hot event loop stays untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

from .core import GuardRail
from .monitors import check_cwnd_bounds, check_link_conservation, check_tracker_sanity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator.engine import Simulator
    from ..simulator.topology import Network
    from ..tcp.base import TcpSender

__all__ = [
    "EngineWatchdog",
    "StepperWatchdog",
    "bdp_cwnd_cap",
    "certified_cwnd_slack",
    "install_packet_guards",
]


class EngineWatchdog:
    """Heartbeat-based progress monitor for one :class:`Simulator`.

    Every ``interval`` seconds of simulation time the watchdog checks
    that (a) the clock did not run backwards since the previous beat and
    (b) no more than ``max_events_per_interval`` events were *scheduled*
    between beats.  Scheduling activity is read off the engine's event
    sequence counter, which is live mid-run — the engine's
    ``events_processed`` counter is only flushed when ``run()`` returns,
    so it cannot drive an in-run check; and for livelock detection the
    two are equivalent, since a zero-delay livelock schedules (at least)
    one event per event it burns.  The watchdog stops re-arming once it
    would be the only pending event, so it never keeps a finished
    simulation alive.
    """

    def __init__(
        self,
        sim: "Simulator",
        rail: GuardRail,
        interval: float = 0.01,
        max_events_per_interval: int = 2_000_000,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        if max_events_per_interval < 1:
            raise ValueError(
                f"max_events_per_interval must be positive, got "
                f"{max_events_per_interval!r}"
            )
        self.sim = sim
        self.rail = rail
        self.interval = interval
        self.max_events_per_interval = max_events_per_interval
        self.beats = 0
        self._last_now = sim.now
        self._last_seq = 0
        self._started = False

    def start(self) -> None:
        """Arm the first heartbeat."""
        if self._started:
            raise RuntimeError("watchdog already started")
        self._started = True
        self._last_now = self.sim.now
        entry = self.sim.schedule(self.interval, self._beat)
        self._last_seq = int(entry[1])

    def _beat(self) -> None:
        sim = self.sim
        now = sim.now
        self.beats += 1
        if now < self._last_now:
            self.rail.violation(
                "engine-monotonic",
                "watchdog",
                now,
                f"clock ran backwards: {now!r} < previous beat {self._last_now!r}",
            )
        self._last_now = now
        if sim.pending_events() <= 0:
            return
        # Re-arm first: the fresh entry's sequence number brackets exactly
        # one interval's worth of schedule() calls (minus this arming).
        entry = sim.schedule(self.interval, self._beat)
        seq = int(entry[1])
        delta = seq - self._last_seq - 1
        self._last_seq = seq
        if delta > self.max_events_per_interval:
            self.rail.violation(
                "engine-stall",
                "watchdog",
                now,
                f"{delta} events scheduled in one {self.interval:.6g} s beat "
                f"(limit {self.max_events_per_interval}); zero-delay livelock?",
            )


class StepperWatchdog:
    """Per-epoch progress monitor for the service daemon's stepper.

    The churn daemon (:mod:`repro.service`) advances its live simulation
    one epoch at a time.  Around each epoch the supervisor brackets the
    step with :meth:`begin` / :meth:`check`; the watchdog verifies that
    (a) simulated time never ran backwards, (b) the step actually reached
    its target time (a stepper that returns early is stalled), and (c) —
    when a wall clock is supplied — the step stayed within its wall-clock
    budget.  Violations go through the usual :class:`GuardRail` policies:
    under ``"raise"`` they abort; under ``"record"``/``"degrade"`` the
    daemon sees ``check()`` return ``True`` and triggers a supervised
    restart from the journal.

    The wall clock is *injected* (e.g. ``time.monotonic`` from the
    daemon) rather than read here, so this module stays free of ambient
    time sources and tests can fake hangs deterministically.
    """

    #: Slack when comparing simulated time against the epoch target.
    _EPS_TIME = 1e-9

    def __init__(
        self,
        rail: GuardRail,
        *,
        stall_timeout_s: float = 30.0,
        clock=None,
    ) -> None:
        if stall_timeout_s <= 0:
            raise ValueError(
                f"stall_timeout_s must be positive, got {stall_timeout_s!r}"
            )
        self.rail = rail
        self.stall_timeout_s = stall_timeout_s
        self._clock = clock
        self.fires = 0
        self._begin_sim: Optional[float] = None
        self._begin_wall: Optional[float] = None

    def begin(self, sim_time: float) -> None:
        """Arm the watchdog for one epoch starting at ``sim_time``."""
        self._begin_sim = sim_time
        self._begin_wall = self._clock() if self._clock is not None else None

    def check(self, sim_time: float, target_time: float) -> bool:
        """Audit the completed step; returns whether any violation fired."""
        if self._begin_sim is None:
            raise RuntimeError("watchdog check() without begin()")
        fired = False
        if sim_time < self._begin_sim:
            fired = True
            self.fires += 1
            self.rail.violation(
                "service-monotonic",
                "stepper",
                sim_time,
                f"simulated clock ran backwards: {sim_time!r} < epoch start "
                f"{self._begin_sim!r}",
            )
        if sim_time + self._EPS_TIME < target_time:
            fired = True
            self.fires += 1
            self.rail.violation(
                "service-stall",
                "stepper",
                sim_time,
                f"epoch stepper stalled at t={sim_time!r} short of target "
                f"{target_time!r}",
            )
        if self._begin_wall is not None and self._clock is not None:
            elapsed = self._clock() - self._begin_wall
            if elapsed > self.stall_timeout_s:
                fired = True
                self.fires += 1
                self.rail.violation(
                    "service-stall",
                    "stepper",
                    sim_time,
                    f"epoch took {elapsed:.3g} s of wall time (budget "
                    f"{self.stall_timeout_s:.3g} s); hung stepper?",
                )
        self._begin_sim = None
        self._begin_wall = None
        return fired


def certified_cwnd_slack() -> float:
    """The cwnd-cap slack factor, derived from a verification certificate.

    ``repro verify`` proves (starvation-bound certificate) that MLTCP's
    aggressiveness stays within ``[F_min, F_max]``; additive increase is
    scaled by at most ``F_max``, and dup-ACK recovery inflation can
    legitimately double a window on top of that, so ``2 * F_max`` bounds
    honest growth (docs/VERIFICATION.md, "Derived bounds").  On paper
    constants this evaluates to the 4.0 the cap historically hard-coded —
    but now the number moves with the proof instead of with a comment.
    """
    from ..verify.certificates import certified_f_max

    return 2.0 * certified_f_max()


def bdp_cwnd_cap(
    bottleneck_bps: float,
    rtt_s: float,
    mss_bytes: int,
    queue_packets: int,
    slack: Optional[float] = None,
) -> float:
    """A deliberately loose cwnd ceiling in segments.

    One bandwidth-delay product plus the bottleneck buffer is the most a
    well-behaved flow can usefully keep in flight; ``slack`` covers
    slow-start overshoot, recovery inflation (dup-ACK window inflation
    can legitimately double the window) and MLTCP's F-scaling.  When not
    given, the slack comes from :func:`certified_cwnd_slack` — the
    proved aggressiveness range — rather than a hand-written constant.
    Anything beyond is runaway growth.
    """
    if bottleneck_bps <= 0 or rtt_s <= 0 or mss_bytes <= 0:
        raise ValueError(
            f"bottleneck_bps, rtt_s and mss_bytes must be positive, got "
            f"{bottleneck_bps!r}, {rtt_s!r}, {mss_bytes!r}"
        )
    if slack is None:
        slack = certified_cwnd_slack()
    bdp_segments = bottleneck_bps * rtt_s / (8.0 * mss_bytes)
    return slack * (bdp_segments + queue_packets) + 10.0


def install_packet_guards(
    sim: "Simulator",
    network: "Network",
    senders: Mapping[str, "TcpSender"],
    rail: GuardRail,
    *,
    interval: float = 0.005,
    max_cwnd: float = float("inf"),
    min_cwnd: float = 1.0,
) -> None:
    """Attach periodic invariant checks to a packet simulation.

    Every ``interval`` seconds of sim time a heartbeat event sweeps all
    senders (cwnd bounds, MLTCP tracker sanity when present) and all
    links (packet conservation).  The heartbeat re-arms only while other
    events are pending, so it never extends a finished run by more than
    one interval.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval!r}")

    def beat() -> None:
        now = sim.now
        for name in sorted(senders):
            sender = senders[name]
            check_cwnd_bounds(
                rail,
                name,
                sender.cc.cwnd,
                now=now,
                min_cwnd=min_cwnd,
                max_cwnd=max_cwnd,
            )
            mltcp = getattr(sender.cc, "mltcp", None)
            if mltcp is not None:
                check_tracker_sanity(rail, mltcp.tracker, now=now, flow=name)
        for key in sorted(network.links):
            check_link_conservation(rail, network.links[key], now=now)
        if sim.pending_events() > 0:
            sim.schedule(interval, beat)

    sim.schedule(interval, beat)

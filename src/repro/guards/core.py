"""Guardrail core: violation records, policies, and the :class:`GuardRail` sink.

The paper's MLTCP is a *distributed* approximation of a centralized
scheduler, so nothing global checks that the system stays inside its
physical envelope — conservation per link, capacity per allocation, cwnd
bounds, tracker sanity.  The guards subsystem makes those invariants
checkable at runtime: monitors (:mod:`repro.guards.monitors`,
:mod:`repro.guards.watchdog`) call :meth:`GuardRail.violation` whenever an
invariant is broken, and the rail's *policy* decides what happens:

``off``
    Drop the report (useful to silence one guard via ``overrides``).
``record``
    Accumulate an :class:`InvariantViolation` for the telemetry layer —
    the default for experiments, where one bad step should not kill a
    sweep.
``raise``
    Raise :class:`GuardViolationError` at the violation site — the test
    and smoke-target policy.  Violations whose caller already engaged a
    fallback (``fallback_engaged=True``, e.g. MLTCP degrading to vanilla
    CC) are recorded but never raised: degrading *is* the graceful path.
``degrade``
    Like ``record``; names the intent at sites where a fallback exists.

Everything here is dependency-free (no simulator imports), so any layer —
engine, fluid, TCP, harness — can hold a rail without import cycles.
Monitors are **off by default**: no rail attached means the hot paths pay
nothing (see ``benchmarks/bench_guard_overhead.py`` and docs/ROBUSTNESS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

__all__ = [
    "POLICIES",
    "InvariantViolation",
    "GuardViolationError",
    "GuardRail",
]

#: Valid guard policies, in escalation order.
POLICIES = ("off", "record", "raise", "degrade")


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant violation (structured, JSON-ready).

    ``guard`` is the stable machine name of the invariant (the catalogue
    lives in docs/ROBUSTNESS.md), ``subject`` the entity it concerns (a
    link name, flow id, policy class, ...), ``time`` the simulation time
    of detection, and ``fallback_engaged`` whether the reporting layer
    already degraded to a safe behaviour instead of misbehaving.
    """

    guard: str
    subject: str
    time: float
    message: str
    fallback_engaged: bool = False

    def render(self) -> str:
        """Human-readable one-liner (the CLI summary format)."""
        suffix = " [fallback engaged]" if self.fallback_engaged else ""
        return f"[{self.guard}] t={self.time:.6g} {self.subject}: {self.message}{suffix}"

    def as_dict(self) -> dict:
        """JSON-ready form (one entry of the run-report ``guards`` section)."""
        return {
            "guard": self.guard,
            "subject": self.subject,
            "time": self.time,
            "message": self.message,
            "fallback_engaged": self.fallback_engaged,
        }


class GuardViolationError(RuntimeError):
    """Raised at the violation site under the ``raise`` policy."""

    def __init__(self, violation: InvariantViolation) -> None:
        super().__init__(violation.render())
        self.violation = violation


class GuardRail:
    """Collects :class:`InvariantViolation` reports and applies a policy.

    One rail is shared by every monitor of a run (both substrates, the
    protocol layer, watchdogs); pass it wherever a ``guards=`` parameter
    is accepted.  Per-guard ``overrides`` refine the default policy, e.g.
    ``GuardRail("raise", overrides={"engine-stall": "record"})``.

    The rail also satisfies the engine's monitor duck-type
    (:class:`repro.simulator.engine.SimMonitor`): the engine calls
    :meth:`violation` directly.
    """

    def __init__(
        self,
        policy: str = "record",
        overrides: Optional[Mapping[str, str]] = None,
        max_violations: int = 10_000,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown guard policy {policy!r}; expected one of {POLICIES}")
        if max_violations < 1:
            raise ValueError(f"max_violations must be positive, got {max_violations!r}")
        for guard, override in (overrides or {}).items():
            if override not in POLICIES:
                raise ValueError(
                    f"unknown override policy {override!r} for guard {guard!r}; "
                    f"expected one of {POLICIES}"
                )
        self.policy = policy
        self.overrides: Dict[str, str] = dict(overrides or {})
        self.max_violations = max_violations
        self.violations: List[InvariantViolation] = []
        #: Violations discarded after ``max_violations`` was reached.
        self.dropped = 0

    def policy_for(self, guard: str) -> str:
        """The effective policy for one guard (override, else default)."""
        return self.overrides.get(guard, self.policy)

    def violation(
        self,
        guard: str,
        subject: str,
        time: float,
        message: str,
        fallback_engaged: bool = False,
    ) -> Optional[InvariantViolation]:
        """Report one violation; record and/or raise according to policy.

        Returns the recorded :class:`InvariantViolation` (or ``None`` when
        the guard's policy is ``off``).  Under ``raise``, violations with
        no engaged fallback raise :class:`GuardViolationError` *after*
        being recorded, so a post-mortem still sees them.
        """
        policy = self.policy_for(guard)
        if policy == "off":
            return None
        violation = InvariantViolation(
            guard=guard,
            subject=subject,
            time=time,
            message=message,
            fallback_engaged=fallback_engaged,
        )
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        else:
            self.dropped += 1
        if policy == "raise" and not fallback_engaged:
            raise GuardViolationError(violation)
        return violation

    def counts_by_guard(self) -> Dict[str, int]:
        """``{guard: violation count}`` in sorted guard order."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.guard] = counts.get(violation.guard, 0) + 1
        return {guard: counts[guard] for guard in sorted(counts)}

    def clear(self) -> None:
        """Forget every recorded violation (between sweep points)."""
        self.violations.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.violations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GuardRail(policy={self.policy!r}, violations={len(self.violations)}"
            + (f", dropped={self.dropped}" if self.dropped else "")
            + ")"
        )

"""Runtime guardrails: invariant monitors, watchdogs, degradation hooks.

The subsystem has three layers (docs/ROBUSTNESS.md has the full
catalogue and the degradation state machine):

1. **Invariant monitors** (:mod:`~repro.guards.monitors`) — pluggable
   checks for byte/flow conservation per link, cwnd bounds, allocation
   capacity, engine time monotonicity and Algorithm 1 tracker sanity,
   all reporting into one :class:`GuardRail` whose policy is ``record``
   (experiments), ``raise`` (tests, ``make guards-smoke``) or
   ``degrade`` (where a fallback exists).  Off by default: simulations
   without a rail attached pay nothing.
2. **Graceful MLTCP degradation** — not in this package but driven by
   it: when the iteration tracker flags its estimate unreliable,
   :class:`repro.tcp.mltcp.MltcpState` clamps ``F(bytes_ratio)`` to 1
   (vanilla Reno/CUBIC/DCTCP) and reports here with
   ``fallback_engaged=True``.
3. **Watchdogs** (:mod:`~repro.guards.watchdog`) — engine stall/progress
   detection and the packet-substrate heartbeat installer; the harness
   wall-clock watchdog lives in :mod:`repro.harness.runner`.

Quick start::

    from repro.guards import GuardRail
    rail = GuardRail("raise")                  # tests: violations raise
    run_fluid(jobs, 50.0, policy=..., guards=rail)
    run_packet_jobs(jobs, factory, guards=rail)
    rail.violations                            # InvariantViolation records
"""

from .core import POLICIES, GuardRail, GuardViolationError, InvariantViolation
from .monitors import (
    ALLOCATION_REL_TOL,
    check_allocation,
    check_cwnd_bounds,
    check_link_conservation,
    check_reroute_conservation,
    check_route_liveness,
    check_tracker_sanity,
)
from .watchdog import (
    EngineWatchdog,
    StepperWatchdog,
    bdp_cwnd_cap,
    certified_cwnd_slack,
    install_packet_guards,
)

__all__ = [
    "POLICIES",
    "GuardRail",
    "GuardViolationError",
    "InvariantViolation",
    "ALLOCATION_REL_TOL",
    "check_allocation",
    "check_cwnd_bounds",
    "check_link_conservation",
    "check_reroute_conservation",
    "check_route_liveness",
    "check_tracker_sanity",
    "EngineWatchdog",
    "StepperWatchdog",
    "bdp_cwnd_cap",
    "certified_cwnd_slack",
    "install_packet_guards",
]

"""Invariant monitors: the pluggable checks behind the guardrail.

Each function checks one physical invariant and reports breaches to a
:class:`~repro.guards.core.GuardRail`; what happens next (record, raise,
degrade) is the rail's policy, not the monitor's business.  Monitors are
pure observers — they never mutate the object they inspect — and they are
only ever called when a rail is attached, so simulations without guards
pay nothing.

The guard catalogue (names, layers, failure meanings) is documented in
docs/ROBUSTNESS.md.  Call sites:

* ``allocation-capacity`` / ``allocation-negative`` — per fluid step in
  :class:`repro.fluid.flowsim.FluidSimulator` (inline, via
  :func:`repro.fluid.allocation.allocation_excess`) and here for ad-hoc
  policy checks.
* ``link-conservation`` — packet heartbeats
  (:func:`repro.guards.watchdog.install_packet_guards`).
* ``cwnd-bounds`` — same heartbeats, against a BDP-derived cap.
* ``tracker-sanity`` — heartbeats plus the degradation state machine in
  :class:`repro.tcp.mltcp.MltcpState` (which reports with
  ``fallback_engaged=True`` when it clamps F to 1).
* ``engine-monotonic`` / ``engine-stall`` — the engine's monitored event
  loop and :class:`repro.guards.watchdog.EngineWatchdog`.
* ``route-liveness`` / ``reroute-conservation`` — after every fabric-fault
  transition in :func:`repro.faults.packet.install_packet_faults` and per
  step in the faulted :class:`repro.fluid.network.NetworkFluidSimulator`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from ..fluid.allocation import allocation_excess
from .core import GuardRail

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.iteration import IterationTracker
    from ..faults.routing import FabricRoutingState
    from ..simulator.link import Link
    from ..simulator.topology import Network

__all__ = [
    "ALLOCATION_REL_TOL",
    "check_allocation",
    "check_link_conservation",
    "check_cwnd_bounds",
    "check_reroute_conservation",
    "check_route_liveness",
    "check_tracker_sanity",
]

#: Relative float tolerance for allocation-sum checks: water-fill levels
#: are sums of many small floats, so the total may exceed capacity by a
#: few ulps without being wrong.
ALLOCATION_REL_TOL = 1e-6


def check_allocation(
    rail: GuardRail,
    rates: Mapping[str, float],
    capacity_bps: float,
    *,
    now: float,
    subject: str = "allocation",
) -> None:
    """Allocated rates must be non-negative and sum to at most capacity."""
    if not rates:
        return
    excess = allocation_excess(rates, capacity_bps)
    if excess > ALLOCATION_REL_TOL * capacity_bps:
        rail.violation(
            "allocation-capacity",
            subject,
            now,
            f"allocated {capacity_bps + excess:.6g} bps exceeds capacity "
            f"{capacity_bps:.6g} bps by {excess:.6g} bps",
        )
    for flow_id in sorted(rates):
        rate = rates[flow_id]
        if rate < 0.0:
            rail.violation(
                "allocation-negative",
                str(flow_id),
                now,
                f"negative allocated rate {rate!r} bps",
            )


def check_link_conservation(rail: GuardRail, link: "Link", *, now: float) -> None:
    """Every packet a link accepted is dequeued or still buffered.

    Uses :meth:`repro.simulator.link.Link.conservation_delta`, which is
    exact at any instant (lazy settling keeps planned-but-started packets
    both buffered and uncounted, so the identity holds mid-burst too).
    """
    delta = link.conservation_delta()
    if delta != 0:
        rail.violation(
            "link-conservation",
            link.name,
            now,
            f"accepted-packet imbalance {delta:+d} "
            "(enqueued != dequeued + buffered)",
        )


def check_cwnd_bounds(
    rail: GuardRail,
    flow: str,
    cwnd: float,
    *,
    now: float,
    min_cwnd: float = 1.0,
    max_cwnd: float = float("inf"),
) -> None:
    """cwnd must stay within [min_cwnd, a BDP-derived cap].

    The cap (:func:`repro.guards.watchdog.bdp_cwnd_cap`) is deliberately
    slack — recovery inflation and queue absorption are legitimate — so a
    breach means runaway window growth, not ordinary dynamics.
    """
    if cwnd < min_cwnd:
        rail.violation(
            "cwnd-bounds",
            flow,
            now,
            f"cwnd {cwnd:.6g} below the floor {min_cwnd:.6g}",
        )
    elif cwnd > max_cwnd:
        rail.violation(
            "cwnd-bounds",
            flow,
            now,
            f"cwnd {cwnd:.6g} above the BDP-derived cap {max_cwnd:.6g}",
        )


def check_route_liveness(
    rail: GuardRail,
    network: "Network",
    routing: "FabricRoutingState",
    *,
    now: float,
) -> None:
    """Installed routes agree with the failure-aware routing state.

    After a fabric-fault transition every host pair that still *has* a
    surviving path must have exactly that path programmed in
    ``network.routes`` — anything else means the reroute pass missed a
    pair and live traffic is steered at a severed or stale link.  Pairs
    whose current path is ``None`` (e.g. a partitioned rack) are expected
    to keep their stale route and blackhole, so they are skipped.
    """
    for (src, dst), installed in sorted(network.routes.items()):
        expected = routing.path_nodes(src, dst)
        if expected is not None and tuple(expected) != installed:
            rail.violation(
                "route-liveness",
                f"{src}->{dst}",
                now,
                f"installed route {'->'.join(installed)} disagrees with the "
                f"surviving-spine path {'->'.join(expected)}",
            )


def check_reroute_conservation(
    rail: GuardRail, network: "Network", *, now: float
) -> None:
    """No packet vanishes across a reroute: every link still conserves.

    Severing a link mid-serialization and repointing routing tables must
    leave each link's accepted = dequeued + buffered identity intact
    (:meth:`repro.simulator.link.Link.conservation_delta` is exact even
    while a link is down).  Run after every fabric-fault transition;
    reports under its own guard name so a report reader can tell a
    reroute-triggered breach from a periodic heartbeat one.
    """
    for _key, link in sorted(network.links.items()):
        delta = link.conservation_delta()
        if delta != 0:
            rail.violation(
                "reroute-conservation",
                link.name,
                now,
                f"accepted-packet imbalance {delta:+d} across a fabric "
                "transition (enqueued != dequeued + buffered)",
            )


def check_tracker_sanity(
    rail: GuardRail,
    tracker: "IterationTracker",
    *,
    now: float,
    flow: str = "",
) -> None:
    """Algorithm 1 state stays in range: ``bytes_ratio`` in [0, 1], counts
    non-negative.  Estimate *drift* is the tracker's own job (it flags
    itself unreliable and MLTCP degrades — see docs/ROBUSTNESS.md); this
    check catches state corruption the state machine cannot explain."""
    ratio = tracker.bytes_ratio
    if not 0.0 <= ratio <= 1.0:
        rail.violation(
            "tracker-sanity",
            flow,
            now,
            f"bytes_ratio {ratio!r} outside [0, 1]",
        )
    if tracker.bytes_sent < 0:
        rail.violation(
            "tracker-sanity",
            flow,
            now,
            f"bytes_sent {tracker.bytes_sent!r} is negative",
        )

"""Invariant certificates and counterexample fixtures.

Every ``repro verify`` verdict becomes a committed, machine-readable
artifact under ``src/repro/verify/certificates/``:

* **UNSAT → invariant certificate** — the property, its parameters, the
  proved invariants (e.g. the instantaneous share floor
  ``F_min / (F_min + (n-1) F_max)``) and a fingerprint over the mirrored
  model constants.  ``repro.guards`` derives monitor bounds from these
  instead of hand-written numbers (:func:`certified_f_max` feeds the
  cwnd/BDP cap slack in :func:`repro.guards.watchdog.bdp_cwnd_cap`).
* **SAT → counterexample** — the witness state plus a ready-to-replay
  fluid-simulator scenario (:func:`scenario_from_witness`), committed as
  a regression fixture and replayed in tests to confirm the model
  predicts the simulator (docs/VERIFICATION.md).

Staleness: the fingerprint is recomputed from the *current* model and
property registry by :func:`staleness_errors`; a unit test and
``repro verify --check`` both fail when a mirrored constant, the model
version or a property's parameters changed after the artifact was
generated.

This module stays importable without z3 (stdlib only + :mod:`.model` /
:mod:`.properties`): guards loads certificates at runtime and must never
pay for the solver stack.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path
from typing import Optional

from .model import model_fingerprint
from .properties import PROPERTIES, Property, invariants_for, property_by_name
from .solver import Verdict

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "CERTIFICATE_DIR",
    "artifact_filename",
    "build_artifact",
    "scenario_from_witness",
    "write_artifact",
    "load_artifact",
    "load_committed",
    "staleness_errors",
    "certified_invariants",
    "certified_f_max",
    "certified_share_floor",
]

#: Bump on breaking artifact-layout changes.
ARTIFACT_FORMAT_VERSION = 1

#: Where the committed artifacts live (package data, shipped with repro).
CERTIFICATE_DIR = Path(__file__).resolve().parent / "certificates"


def artifact_filename(prop: Property) -> str:
    """``<name>.v<version>.json`` — versioned so upgrades coexist."""
    return f"{prop.name}.v{prop.version}.json"


def _fingerprint(prop: Property, params: dict) -> str:
    return model_fingerprint(
        {"property": prop.name, "version": prop.version, "params": params}
    )


def build_artifact(verdict: Verdict) -> dict:
    """The JSON artifact for one conclusive verdict.

    ``unsat`` yields an invariant certificate, ``sat`` a counterexample
    with an attached replay scenario; ``unknown``/``skipped`` verdicts
    have nothing to certify and raise ``ValueError``.
    """
    prop = property_by_name(verdict.property)
    if verdict.verdict not in ("unsat", "sat"):
        raise ValueError(
            f"cannot build an artifact from verdict {verdict.verdict!r} "
            f"for {verdict.property!r}"
        )
    base = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "kind": (
            "invariant-certificate" if verdict.verdict == "unsat" else "counterexample"
        ),
        "property": prop.name,
        "property_version": prop.version,
        "summary": prop.summary,
        "verdict": verdict.verdict,
        "backend": verdict.backend,
        "params": dict(verdict.params),
        "states_checked": verdict.states_checked,
        "fingerprint": _fingerprint(prop, verdict.params),
    }
    if verdict.verdict == "unsat":
        base["invariants"] = invariants_for(prop, verdict.params)
    else:
        witness = dict(verdict.witness or {})
        # Traces can be long; the scenario replays from the initial state.
        witness.pop("trace", None)
        base["witness"] = witness
        base["scenario"] = scenario_from_witness(prop, witness, verdict.params)
    return base


def scenario_from_witness(prop: Property, witness: dict, params: dict) -> dict:
    """A fluid-simulator regression scenario from a SAT witness.

    Maps the model's abstract schedule onto concrete units: a 10 Gbps
    bottleneck, per-iteration communication volume ``alpha * period *
    capacity`` and compute gap ``(1 - alpha) * period``, with the witness
    lag as the second job's start offset.  ``expectation`` records what
    the model claims, which the replay test asserts against
    :func:`repro.fluid.flowsim.run_fluid` output.
    """
    from ..core.units import bps_from_gbps

    period = float(params.get("period", 1.0))
    alpha = float(params.get("alpha", 0.4))
    capacity_gbps = 10.0
    comm_bits = alpha * period * bps_from_gbps(capacity_gbps)
    compute_time = (1.0 - alpha) * period
    if "initial_lag" in witness:
        offsets = [0.0, float(witness["initial_lag"]) % period]
    elif "initial_offsets" in witness:
        offsets = [float(o) % period for o in witness["initial_offsets"]]
    else:
        raise ValueError(f"witness has no schedule: {sorted(witness)}")
    jobs = [
        {
            "name": f"job-{chr(ord('a') + i)}",
            "comm_bits": comm_bits,
            "demand_gbps": capacity_gbps,
            "compute_time": compute_time,
            "start_offset": offset,
        }
        for i, offset in enumerate(offsets)
    ]
    return {
        "capacity_gbps": capacity_gbps,
        "variant": params.get("variant", "paper"),
        "alpha": alpha,
        "period_s": period,
        "iterations": int(params.get("k", 16)) + 8,
        "jobs": jobs,
        "expectation": {
            "interleaves": False,
            "detail": (
                f"the model predicts this schedule never reaches the "
                f"interleavable condition under variant "
                f"{params.get('variant', 'paper')!r}; the paper F1 variant "
                f"must interleave from the same schedule"
            ),
        },
    }


def write_artifact(artifact: dict, directory: Optional[Path] = None) -> Path:
    """Write one artifact into ``directory`` (default: the committed set)."""
    directory = Path(directory) if directory is not None else CERTIFICATE_DIR
    directory.mkdir(parents=True, exist_ok=True)
    prop = property_by_name(artifact["property"])
    path = directory / artifact_filename(prop)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: Path) -> dict:
    """Read one artifact file (``ValueError`` on a non-artifact JSON)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "property" not in data:
        raise ValueError(f"{path} is not a verification artifact")
    return data


@lru_cache(maxsize=None)
def load_committed(name: str) -> dict:
    """The committed artifact of property ``name`` (cached per process)."""
    prop = property_by_name(name)
    path = CERTIFICATE_DIR / artifact_filename(prop)
    if not path.exists():
        raise FileNotFoundError(
            f"no committed artifact for {name!r} at {path}; regenerate with "
            f"`python -m repro verify --write`"
        )
    return load_artifact(path)


def staleness_errors(artifact: dict) -> list[str]:
    """Why ``artifact`` no longer matches the current model/properties.

    Empty list = fresh.  Checks the property still exists at the same
    version, the verdict still matches the property's expectation, and the
    fingerprint (mirrored constants + model version + parameters) is
    unchanged.
    """
    errors: list[str] = []
    name = artifact.get("property", "<missing>")
    if name not in PROPERTIES:
        return [f"{name}: property no longer exists"]
    prop = PROPERTIES[name]
    if artifact.get("property_version") != prop.version:
        errors.append(
            f"{name}: artifact is v{artifact.get('property_version')}, "
            f"property is now v{prop.version}"
        )
    if artifact.get("verdict") != prop.expected:
        errors.append(
            f"{name}: artifact verdict {artifact.get('verdict')!r} no longer "
            f"matches the expected {prop.expected!r}"
        )
    expected_fingerprint = _fingerprint(prop, artifact.get("params", {}))
    if artifact.get("fingerprint") != expected_fingerprint:
        errors.append(
            f"{name}: fingerprint mismatch — a mirrored model constant, the "
            f"model version or the property parameters changed since this "
            f"artifact was generated (regenerate with `repro verify --write`)"
        )
    return errors


def certified_invariants(name: str) -> dict:
    """The invariants section of a committed UNSAT certificate."""
    artifact = load_committed(name)
    if artifact.get("kind") != "invariant-certificate":
        raise ValueError(f"{name!r} is a {artifact.get('kind')}, not a certificate")
    stale = staleness_errors(artifact)
    if stale:
        raise ValueError(
            f"certificate {name!r} is stale: " + "; ".join(stale)
        )
    return dict(artifact["invariants"])


def certified_f_max() -> float:
    """The proved upper end of the aggressiveness range (2.0 on paper
    constants), from the starvation-bound certificate.

    This is the value ``repro.guards`` derives the cwnd/BDP cap slack
    from: recovery inflation can double a window and MLTCP scales
    additive increase by at most ``F_max``, so ``slack = 2 * F_max``
    bounds legitimate growth (docs/ROBUSTNESS.md, "Derived bounds").
    """
    return float(certified_invariants("starvation-bound")["f_max"])


def certified_share_floor() -> float:
    """The proved instantaneous share floor (1/9 on paper constants)."""
    return float(
        certified_invariants("starvation-bound")["instantaneous_share_floor"]
    )

"""CLI glue for ``repro verify``: run queries, check/regenerate artifacts.

Exit codes follow :mod:`repro.cliutil`: ``0`` every selected property
reached its expected verdict (and, with ``--check``, every committed
artifact exists and is fresh), ``1`` a property disagreed / timed out /
an artifact is stale or missing, ``2`` usage error (unknown property or
backend).  A requested-but-missing z3 backend *skips* with
:data:`repro.verify.solver.Z3_INSTALL_HINT` rather than failing, so CI
without the optional ``[verify]`` extra stays green.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from ..cliutil import EXIT_OK, fail, report_violations
from .certificates import (
    CERTIFICATE_DIR,
    artifact_filename,
    build_artifact,
    load_artifact,
    staleness_errors,
    write_artifact,
)
from .properties import PROPERTIES, property_by_name
from .solver import Verdict, solve

__all__ = ["run_verify"]


def _selected(names: Sequence[str]) -> list:
    if not names:
        return [PROPERTIES[name] for name in sorted(PROPERTIES)]
    return [property_by_name(name) for name in names]


def _artifact_path(prop, directory: Optional[Path]) -> Path:
    base = Path(directory) if directory is not None else CERTIFICATE_DIR
    return base / artifact_filename(prop)


def _render(verdict: Verdict, expected: str) -> str:
    status = "ok" if verdict.verdict == expected else (
        "skipped" if verdict.verdict == "skipped" else "FAIL"
    )
    line = (
        f"{verdict.property:38} v{verdict.version}  "
        f"{verdict.verdict:8} (expected {expected:5}) "
        f"[{verdict.backend}, {verdict.states_checked} states, "
        f"{verdict.elapsed_s:.2f} s]  {status}"
    )
    if verdict.reason:
        line += f"\n    {verdict.reason}"
    return line


def run_verify(
    properties: Sequence[str] = (),
    backend: str = "auto",
    timeout: float = 30.0,
    fast: bool = False,
    check: bool = False,
    write: bool = False,
    write_dir: Optional[str] = None,
    report: Optional[str] = None,
    list_properties: bool = False,
) -> int:
    """Execute the ``repro verify`` subcommand; returns an exit code."""
    if list_properties:
        for name in sorted(PROPERTIES):
            prop = PROPERTIES[name]
            print(f"{prop.name:38} v{prop.version}  expects {prop.expected:5}  {prop.summary}")
        return EXIT_OK

    try:
        selected = _selected(properties)
    except KeyError as error:
        return fail(str(error.args[0]))
    if backend not in ("auto", "exhaustive", "z3"):
        return fail(
            f"unknown backend {backend!r}; expected 'auto', 'exhaustive' or 'z3'"
        )
    if timeout <= 0:
        return fail(f"--timeout must be positive, got {timeout!r}")

    problems: list[str] = []
    verdicts: list[Verdict] = []
    for prop in selected:
        verdict = solve(prop, backend=backend, fast=fast, timeout_s=timeout)
        verdicts.append(verdict)
        print(_render(verdict, prop.expected))
        if verdict.verdict == "skipped":
            continue  # optional backend absent/not applicable: clear, not fatal
        if verdict.verdict != prop.expected:
            problems.append(
                f"{prop.name}: got {verdict.verdict!r}, expected "
                f"{prop.expected!r}"
                + (f" ({verdict.reason})" if verdict.reason else "")
            )
            continue
        if write:
            path = write_artifact(
                build_artifact(verdict),
                Path(write_dir) if write_dir else None,
            )
            print(f"    wrote {path}")

    # Committed-artifact audit: staleness always, existence under --check.
    directory = Path(write_dir) if write_dir else None
    for prop in selected:
        path = _artifact_path(prop, directory)
        if not path.exists():
            if check and not write:
                problems.append(
                    f"{prop.name}: no committed artifact at {path} "
                    f"(regenerate with `python -m repro verify --write`)"
                )
            continue
        try:
            artifact = load_artifact(path)
        except (ValueError, OSError) as error:
            problems.append(f"{prop.name}: unreadable artifact {path}: {error}")
            continue
        problems.extend(staleness_errors(artifact))

    if report is not None:
        _write_report(report, verdicts)
        print(f"verification report written to {report}")

    if problems:
        return report_violations(
            f"repro verify: {len(problems)} problem(s) across "
            f"{len(selected)} property(ies)",
            problems,
        )
    print(
        f"repro verify: {len(selected)} property(ies) at their expected "
        f"verdicts"
    )
    return EXIT_OK


def _write_report(path: str, verdicts: Sequence[Verdict]) -> None:
    """Write a run-report whose ``verification`` section lists verdicts."""
    from ..harness.telemetry import RunTelemetry

    telemetry = RunTelemetry("verify")
    for verdict in verdicts:
        telemetry.record_verification(
            property=verdict.property,
            version=verdict.version,
            verdict=verdict.verdict,
            backend=verdict.backend,
            states_checked=verdict.states_checked,
            elapsed_s=verdict.elapsed_s,
            params=verdict.params,
            reason=verdict.reason,
        )
    telemetry.write(Path(path))

"""The small-N discrete-step model of Algorithm 1 that `repro verify` checks.

The model is the paper's §4 iteration map made finite: ``n`` identical
periodic jobs share one bottleneck; job ``j``'s state is the start offset
of its current iteration on a circle of circumference ``period``.  Within
an iteration each flow tracks ``bytes_sent`` / ``bytes_ratio`` (Algorithm 1
lines 7–17) and competes with weight ``F(bytes_ratio)``; at the iteration
boundary the offset difference ``lag`` moves by the closed-form shift
(Eq. 3).  The PR 5 degradation clamp is modelled by routing ``F`` to
:data:`DEGRADED_F` regardless of the ratio, which zeroes the shift — the
degraded model is step-equivalent to vanilla fair share.

Two evaluation modes share one set of step functions:

* **concrete** (:data:`CONCRETE_OPS`) — plain floats, used by the
  exhaustive bounded-model-checking backend and by counterexample replay;
* **symbolic** (``SymbolicOps(z3)``) — the same expressions built from
  ``z3.Real`` terms, used by the optional z3 backend.

Constants mirrored from the code under verification carry an
``# mdl: mirrors <dotted.path>`` marker; lint rule MDL001 re-reads the
mirrored definition and fails the build when the two diverge, so the model
cannot silently drift from ``repro.tcp.mltcp`` / ``repro.core``
(docs/VERIFICATION.md, "Keeping the model honest").

This module is deliberately dependency-free (no numpy, no repro imports):
the certificates it fingerprints are loaded at runtime by
``repro.guards``, and a guards import must never drag the solver stack in.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "SLOPE",
    "INTERCEPT",
    "DEGRADED_F",
    "DECREASING_SLOPE",
    "DECREASING_INTERCEPT",
    "INTERLEAVE_TOLERANCE_FRACTION",
    "DRIFT_THRESHOLD",
    "MODEL_CONSTANTS",
    "MODEL_VERSION",
    "VARIANTS",
    "ModelParams",
    "ConcreteOps",
    "SymbolicOps",
    "CONCRETE_OPS",
    "f_of_ratio",
    "shift_forward",
    "step_lag",
    "circle_distance",
    "min_overlap_share",
    "iteration_share",
    "is_interleaved",
    "step_offsets",
    "pairwise_lags",
    "all_pairs_interleaved",
    "model_fingerprint",
]

#: Bump when the step functions change meaning; stamped into every
#: certificate so stale proofs are detected even if constants survive.
MODEL_VERSION = 1

# -- mirrored constants ------------------------------------------------------
# Each carries an `# mdl: mirrors ...` marker checked by lint rule MDL001.

SLOPE = 1.75  # mdl: mirrors repro.core.aggressiveness.PAPER_SLOPE
INTERCEPT = 0.25  # mdl: mirrors repro.core.aggressiveness.PAPER_INTERCEPT
DEGRADED_F = 1.0  # mdl: mirrors repro.tcp.mltcp.DEGRADED_AGGRESSIVENESS
INTERLEAVE_TOLERANCE_FRACTION = 0.02  # mdl: mirrors repro.core.analysis.CONVERGENCE_TOLERANCE_FRACTION
DRIFT_THRESHOLD = 0.45  # mdl: mirrors repro.core.config.MLTCPConfig.drift_threshold

#: The paper's F5 negative control (``-1.75 * ratio + 2``), used as the
#: deliberately *weakened* model variant: a decreasing aggressiveness
#: function pulls the lag toward full overlap, so interleaving is never
#: reached — the SAT counterexample committed as a regression fixture.
#: (No MDL marker: F5's coefficients are inline literals in
#: ``repro.core.aggressiveness.DecreasingLinearAggressiveness``.)
DECREASING_SLOPE = -1.75
DECREASING_INTERCEPT = 2.0

#: Everything a certificate fingerprint covers, in one place.
MODEL_CONSTANTS: dict[str, float] = {
    "slope": SLOPE,
    "intercept": INTERCEPT,
    "degraded_f": DEGRADED_F,
    "decreasing_slope": DECREASING_SLOPE,
    "decreasing_intercept": DECREASING_INTERCEPT,
    "interleave_tolerance_fraction": INTERLEAVE_TOLERANCE_FRACTION,
    "drift_threshold": DRIFT_THRESHOLD,
}


@dataclass(frozen=True)
class ModelParams:
    """One instantiation of the model: F-family, geometry, degradation.

    ``variant`` selects the effective (slope, intercept) pair:

    * ``"paper"`` — Eq. 2, slope 1.75 / intercept 0.25;
    * ``"degraded"`` — the PR 5 clamp: F ≡ :data:`DEGRADED_F`
      (slope 0), modelling a tracker that flagged itself unreliable;
    * ``"fair"`` — vanilla fair share, F ≡ 1 (what degraded MLTCP must
      be step-equivalent to);
    * ``"decreasing-f"`` — the weakened F5 negative control.
    """

    variant: str = "paper"
    alpha: float = 0.4
    period: float = 1.0
    jobs: int = 2

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown model variant {self.variant!r}; "
                f"expected one of {sorted(VARIANTS)}"
            )
        if not 0.0 < self.alpha <= 0.5:
            raise ValueError(f"alpha must be in (0, 0.5], got {self.alpha!r}")
        if self.period <= 0.0:
            raise ValueError(f"period must be positive, got {self.period!r}")
        if not 2 <= self.jobs <= 3:
            raise ValueError(
                f"the bounded model covers 2–3 jobs, got {self.jobs!r}"
            )

    @property
    def comm(self) -> float:
        """Communication-phase duration at full rate (``alpha * period``)."""
        return self.alpha * self.period

    @property
    def slope(self) -> float:
        return VARIANTS[self.variant][0]

    @property
    def intercept(self) -> float:
        return VARIANTS[self.variant][1]

    @property
    def tolerance(self) -> float:
        """Absolute interleave tolerance on the lag circle."""
        return INTERLEAVE_TOLERANCE_FRACTION * self.period

    def as_dict(self) -> dict:
        return {
            "variant": self.variant,
            "alpha": self.alpha,
            "period": self.period,
            "jobs": self.jobs,
        }


#: variant name -> (effective slope, effective intercept) of F.
VARIANTS: dict[str, tuple[float, float]] = {
    "paper": (SLOPE, INTERCEPT),
    "degraded": (0.0, DEGRADED_F),
    "fair": (0.0, 1.0),
    "decreasing-f": (DECREASING_SLOPE, DECREASING_INTERCEPT),
}


# -- evaluation backends -----------------------------------------------------


class ConcreteOps:
    """Plain-float evaluation of the step expressions."""

    @staticmethod
    def ite(cond, then, other):  # noqa: ANN001 - duck-typed on purpose
        return then if cond else other

    @staticmethod
    def lt(a, b):
        return a < b

    @staticmethod
    def gt(a, b):
        return a > b


CONCRETE_OPS = ConcreteOps()


class SymbolicOps:
    """The same expressions over z3 Real terms.

    Constructed with the imported ``z3`` module so this file never imports
    z3 itself (the ``[verify]`` extra is optional; see
    :mod:`repro.verify.solver`).
    """

    def __init__(self, z3) -> None:  # noqa: ANN001 - z3 is optional
        self._z3 = z3

    def ite(self, cond, then, other):
        return self._z3.If(cond, then, other)

    @staticmethod
    def lt(a, b):
        return a < b

    @staticmethod
    def gt(a, b):
        return a > b


# -- step functions ----------------------------------------------------------


def f_of_ratio(ratio, params: ModelParams):
    """``F(bytes_ratio)`` under the variant's effective (slope, intercept).

    For ``"degraded"`` the slope is zero, so the expression reduces to the
    clamp value :data:`DEGRADED_F` for every ratio — exactly what
    ``MltcpState.aggressiveness`` returns while
    ``tracker.estimate_unreliable`` holds.
    """
    return params.slope * ratio + params.intercept


def shift_forward(lag, params: ModelParams):
    """Eq. 3 on the overlap branch ``0 <= lag < comm`` (symbolic-safe).

    ``slope * lag * (comm - lag) / (comm * intercept + lag * slope)`` — the
    per-iteration boundary shift while communication phases overlap.  The
    denominator is positive for every supported variant on the whole
    branch (paper/fair/degraded: both terms non-negative, intercept > 0;
    decreasing-f: ``2*comm - 1.75*lag > 0`` for ``lag <= comm``), so the
    expression is total where it is used.
    """
    comm = params.comm
    numerator = params.slope * lag * (comm - lag)
    denominator = comm * params.intercept + lag * params.slope
    return numerator / denominator


def step_lag(lag, params: ModelParams, ops=CONCRETE_OPS):
    """One iteration of the boundary map on the lag circle ``[0, period)``.

    Piecewise: the forward Eq. 3 shift while the follower starts inside
    the leader's communication phase (``lag < comm``), the mirrored
    backward shift when the roles are swapped (``lag > period - comm``),
    and zero in the interleaved region between.  For every supported
    variant the image stays inside ``[0, period)``:
    ``shift_forward(lag) <= comm - lag`` for non-negative slopes and
    ``>= -lag`` for the decreasing variant, so no modulo is needed — which
    keeps the expression z3-friendly.
    """
    comm = params.comm
    period = params.period
    return ops.ite(
        ops.lt(lag, comm),
        lag + shift_forward(lag, params),
        ops.ite(
            ops.gt(lag, period - comm),
            lag - shift_forward(period - lag, params),
            lag,
        ),
    )


def circle_distance(lag: float, period: float) -> float:
    """Distance to the full-overlap point along the circle (concrete only)."""
    wrapped = lag % period
    return min(wrapped, period - wrapped)


def min_overlap_share(lag: float, params: ModelParams) -> float:
    """The worst instantaneous capacity share either flow sees at ``lag``.

    While phases overlap the flows split capacity in proportion to their
    weights; the follower has ``bytes_ratio = 0`` at the handoff and the
    leader has ``bytes_ratio = d / comm`` where ``d`` is the circle
    distance, so the follower's share is ``F(0) / (F(0) + F(d/comm))``.
    With no overlap each flow has the link to itself (share 1).  The
    starvation-bound property proves this never drops below
    ``intercept / (intercept + (n-1) * (slope + intercept))`` — 1/9 for
    the paper constants at n = 2 — and exports that floor as an invariant
    certificate.
    """
    d = circle_distance(lag, params.period)
    if d >= params.comm:
        return 1.0
    follower = f_of_ratio(0.0, params)
    leader = f_of_ratio(d / params.comm, params)
    return follower / (follower + leader)


def iteration_share(lag: float, params: ModelParams) -> float:
    """The follower's mean capacity share over its own communication phase.

    Work conservation makes this weight-independent: two jobs with volume
    ``comm * C`` each drain at combined rate ``C`` while both are active,
    so the follower (start lag ``d``) finishes at ``2*comm`` and its
    window share is ``comm / (2*comm - d)`` — at least 1/2, with equality
    only at full overlap.  This is the "held below 1/n" quantity of the
    starvation-bound property.
    """
    d = circle_distance(lag, params.period)
    if d >= params.comm:
        return 1.0
    return params.comm / (2.0 * params.comm - d)


def is_interleaved(lag: float, params: ModelParams) -> bool:
    """The §4 interleavable condition, with the convergence tolerance.

    True when the communication phases overlap by at most
    ``tolerance = INTERLEAVE_TOLERANCE_FRACTION * period`` — the same
    acceptance band :func:`repro.core.analysis.iterations_to_converge`
    uses (mirrored constant, MDL001-checked).
    """
    return circle_distance(lag, params.period) >= params.comm - params.tolerance


# -- n-job extension (concrete only; the z3 backend covers n = 2) ------------


def pairwise_lags(offsets: Iterable[float], period: float) -> list[float]:
    """Lags ``(o_j - o_i) mod period`` for every pair ``i < j``."""
    items = list(offsets)
    return [
        (items[j] - items[i]) % period
        for i in range(len(items))
        for j in range(i + 1, len(items))
    ]


def step_offsets(offsets: list[float], params: ModelParams) -> list[float]:
    """One boundary step of ``n`` offsets: summed pairwise Eq. 3 shifts.

    Mirrors :class:`repro.core.analysis.MultiJobDescent`: each pair's
    signed shift is split half-and-half between its two jobs, so the
    two-job case reduces exactly to :func:`step_lag` on the lag.
    """
    period = params.period
    n = len(offsets)
    moves = [0.0] * n
    for i in range(n):
        for j in range(i + 1, n):
            lag = (offsets[j] - offsets[i]) % period
            shifted = step_lag(lag, params)
            s = shifted - lag
            moves[j] += 0.5 * s
            moves[i] -= 0.5 * s
    return [(offsets[k] + moves[k]) % period for k in range(n)]


def all_pairs_interleaved(offsets: list[float], params: ModelParams) -> bool:
    """Whether every pair of jobs satisfies the interleavable condition."""
    return all(
        is_interleaved(lag, params)
        for lag in pairwise_lags(offsets, params.period)
    )


def model_fingerprint(extra: dict | None = None) -> str:
    """SHA-256 over the mirrored constants, model version and ``extra``.

    Stamped into certificates and counterexamples; the staleness test and
    ``repro verify --check`` recompute it from the *current* model, so an
    edit to any mirrored constant (or to a property's parameters) turns
    committed artifacts stale loudly instead of silently.
    """
    payload = {"model_version": MODEL_VERSION, "constants": MODEL_CONSTANTS}
    if extra:
        payload["extra"] = extra
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()

"""Named, versioned bounded queries over the Algorithm 1 model.

Each :class:`Property` is a *violation query*: "does an initial state
exist from which the bad thing happens within the bound k?".  ``unsat``
therefore means *proved* (no such state in the searched space) and ``sat``
means a concrete counterexample was found.  The four properties from the
verification plan (docs/VERIFICATION.md):

* ``interleaving-reachability`` (+ a 3-job and a deliberately weakened
  variant) — a schedule that never reaches the §4 interleavable
  condition within k iterations;
* ``starvation-bound`` — a flow held below its 1/n share for k
  consecutive iterations, or an instantaneous share below the
  F-range floor ``F_min / (F_min + (n-1) * F_max)``;
* ``degradation-safety`` — a lag where the degraded model's step (or
  share) differs from vanilla fair share;
* ``monotone-recovery`` — an interleaved schedule that a single bounded
  iteration-time shift knocks out of convergence for more than k
  iterations.

Every property declares its ``expected`` verdict; ``repro verify`` fails
when a run disagrees, and UNSAT results are exported as invariant
certificates (consumed by ``repro.guards``), SAT results as fluid-simulator
regression scenarios (:mod:`repro.verify.certificates`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from .model import (
    ModelParams,
    VARIANTS,
    all_pairs_interleaved,
    is_interleaved,
    iteration_share,
    min_overlap_share,
    pairwise_lags,
    step_lag,
    step_offsets,
)

__all__ = [
    "Property",
    "PROPERTIES",
    "property_by_name",
    "share_floor",
    "enumerate_states",
    "check_state",
    "invariants_for",
]

#: Tolerance for "strictly below the floor" comparisons: a genuine
#: violation must clear float noise, not ride on the last ulp.
MARGIN = 1e-9


@dataclass(frozen=True)
class Property:
    """One bounded query: name, version, search space, expected verdict."""

    name: str
    version: int
    summary: str
    expected: str  # "unsat" | "sat"
    params: dict = field(default_factory=dict)
    #: Overrides applied by ``repro verify --fast`` (smaller grids/k so the
    #: smoke target stays cheap); coverage, not soundness, shrinks.
    fast_params: dict = field(default_factory=dict)

    def resolved(self, fast: bool = False, **overrides) -> dict:
        merged = dict(self.params)
        if fast:
            merged.update(self.fast_params)
        merged.update({k: v for k, v in overrides.items() if v is not None})
        return merged


def _grid(points: int, lo: float, hi: float) -> list[float]:
    """``points`` evenly spaced values covering ``[lo, hi]`` inclusive."""
    if points < 2:
        return [lo]
    step = (hi - lo) / (points - 1)
    return [lo + i * step for i in range(points)]


def share_floor(variant: str, jobs: int) -> float:
    """The provable instantaneous-share floor for a variant and job count.

    With every weight in ``[F_min, F_max]`` a flow's worst share against
    ``n - 1`` competitors is ``F_min / (F_min + (n-1) * F_max)`` — 1/9 for
    the paper constants at n = 2.  This is the invariant the
    starvation-bound certificate exports and ``repro.guards`` consumes.
    """
    slope, intercept = VARIANTS[variant]
    endpoints = (intercept, slope + intercept)
    f_min, f_max = min(endpoints), max(endpoints)
    return f_min / (f_min + (jobs - 1) * f_max)


def invariants_for(prop: Property, params: dict) -> dict:
    """The machine-readable invariants an UNSAT verdict certifies."""
    variant = params.get("variant", "paper")
    jobs = int(params.get("jobs", 2))
    slope, intercept = VARIANTS[variant]
    endpoints = (intercept, slope + intercept)
    base = {
        "f_min": min(endpoints),
        "f_max": max(endpoints),
        "jobs": jobs,
    }
    if prop.name.startswith("starvation-bound"):
        base.update(
            {
                "instantaneous_share_floor": share_floor(variant, jobs),
                "iteration_share_floor": 1.0 / jobs,
                "consecutive_iterations": int(params["k"]),
            }
        )
    elif prop.name.startswith("degradation-safety"):
        base.update({"max_step_divergence": 0.0, "degraded_f": VARIANTS["degraded"][1]})
    elif prop.name.startswith("monotone-recovery"):
        base.update(
            {
                "recovery_iterations": int(params["k"]),
                "max_perturbation_fraction": params["max_perturbation_fraction"],
            }
        )
    elif prop.name.startswith("interleaving-reachability"):
        base.update(
            {
                "reach_iterations": int(params["k"]),
                "min_lag_fraction": params["min_lag_fraction"],
            }
        )
    return base


# -- exhaustive-search drivers ----------------------------------------------
#
# A property's search space is a finite grid of initial states; the
# exhaustive backend enumerates `enumerate_states` and calls `check_state`
# on each, which returns a witness dict when the state violates the
# property (SAT) and None otherwise.  The z3 backend re-encodes the same
# queries over continuous initial states (repro.verify.solver).


def _reach_states(params: dict) -> Iterator[tuple]:
    mp = _model(params)
    min_lag = params["min_lag_fraction"] * mp.period
    if mp.jobs == 2:
        for lag in _grid(params["grid"], min_lag, mp.period - min_lag):
            yield (lag,)
        return
    # 3 jobs: job 0 pinned at offset 0; enumerate the other two, skipping
    # near-coincident starts (exact sync is a measure-zero unstable
    # equilibrium the paper escapes with noise; docs/VERIFICATION.md).
    axis = _grid(params["grid"], 0.0, mp.period * (params["grid"] - 1) / params["grid"])
    for o2 in axis:
        for o3 in axis:
            offsets = [0.0, o2, o3]
            if any(
                min(lag, mp.period - lag) < min_lag
                for lag in pairwise_lags(offsets, mp.period)
            ):
                continue
            yield tuple(offsets)


def _check_reach(state: tuple, params: dict) -> Optional[dict]:
    mp = _model(params)
    k = int(params["k"])
    if mp.jobs == 2:
        lag = state[0]
        trace = [lag]
        for _ in range(k):
            if is_interleaved(lag, mp):
                return None
            lag = step_lag(lag, mp)
            trace.append(lag)
        if is_interleaved(lag, mp):
            return None
        return {"initial_lag": state[0], "trace": trace}
    offsets = list(state)
    trace = [list(offsets)]
    for _ in range(k):
        if all_pairs_interleaved(offsets, mp):
            return None
        offsets = step_offsets(offsets, mp)
        trace.append(list(offsets))
    if all_pairs_interleaved(offsets, mp):
        return None
    return {"initial_offsets": list(state), "trace": trace}


def _starvation_states(params: dict) -> Iterator[tuple]:
    mp = _model(params)
    for lag in _grid(params["grid"], 0.0, mp.period):
        yield (lag,)


def _check_starvation(state: tuple, params: dict) -> Optional[dict]:
    mp = _model(params)
    k = int(params["k"])
    floor_inst = share_floor(mp.variant, mp.jobs)
    floor_iter = 1.0 / mp.jobs
    lag = state[0]
    below_streak = 0
    for step in range(k + 1):
        inst = min_overlap_share(lag, mp)
        if inst < floor_inst - MARGIN:
            return {
                "initial_lag": state[0],
                "violation": "instantaneous-share",
                "share": inst,
                "floor": floor_inst,
                "at_iteration": step,
            }
        if iteration_share(lag, mp) < floor_iter - MARGIN:
            below_streak += 1
            if below_streak >= k:
                return {
                    "initial_lag": state[0],
                    "violation": "iteration-share-streak",
                    "floor": floor_iter,
                    "streak": below_streak,
                }
        else:
            below_streak = 0
        lag = step_lag(lag, mp)
    return None


def _safety_states(params: dict) -> Iterator[tuple]:
    period = float(params.get("period", 1.0))
    for lag in _grid(params["grid"], 0.0, period):
        yield (lag,)


def _check_safety(state: tuple, params: dict) -> Optional[dict]:
    degraded = _model(params, variant="degraded")
    fair = _model(params, variant="fair")
    lag = state[0]
    pairs = (
        ("step", step_lag(lag, degraded), step_lag(lag, fair)),
        ("overlap-share", min_overlap_share(lag, degraded), min_overlap_share(lag, fair)),
        ("iteration-share", iteration_share(lag, degraded), iteration_share(lag, fair)),
    )
    for quantity, a, b in pairs:
        if a != b:
            return {
                "initial_lag": lag,
                "violation": quantity,
                "degraded": a,
                "fair": b,
            }
    return None


def _recovery_states(params: dict) -> Iterator[tuple]:
    mp = _model(params)
    min_lag = params["min_lag_fraction"] * mp.period
    max_pert = params["max_perturbation_fraction"] * mp.period
    lags = [
        lag
        for lag in _grid(params["grid"], 0.0, mp.period)
        if is_interleaved(lag, mp)
    ]
    perts = _grid(params["perturbation_grid"], -max_pert, max_pert)
    for lag in lags:
        for pert in perts:
            shifted = (lag + pert) % mp.period
            # A perturbation that lands (almost) exactly on full overlap
            # parks the map on its unstable equilibrium; the continuous
            # system escapes it with any noise, the noise-free bounded
            # model cannot — excluded from the query, stated on the
            # certificate via min_lag_fraction.
            if min(shifted, mp.period - shifted) < min_lag:
                continue
            yield (lag, pert)


def _check_recovery(state: tuple, params: dict) -> Optional[dict]:
    mp = _model(params)
    k = int(params["k"])
    lag0, pert = state
    lag = (lag0 + pert) % mp.period
    trace = [lag]
    for _ in range(k):
        if is_interleaved(lag, mp):
            return None
        lag = step_lag(lag, mp)
        trace.append(lag)
    if is_interleaved(lag, mp):
        return None
    return {"interleaved_lag": lag0, "perturbation": pert, "trace": trace}


def _model(params: dict, variant: Optional[str] = None) -> ModelParams:
    return ModelParams(
        variant=variant if variant is not None else params.get("variant", "paper"),
        alpha=float(params.get("alpha", 0.4)),
        period=float(params.get("period", 1.0)),
        jobs=int(params.get("jobs", 2)),
    )


_STATE_FNS: dict[str, Callable[[dict], Iterator[tuple]]] = {
    "interleaving-reachability": _reach_states,
    "interleaving-reachability-3job": _reach_states,
    "interleaving-reachability-weakened": _reach_states,
    "starvation-bound": _starvation_states,
    "degradation-safety": _safety_states,
    "monotone-recovery": _recovery_states,
}

_CHECK_FNS: dict[str, Callable[[tuple, dict], Optional[dict]]] = {
    "interleaving-reachability": _check_reach,
    "interleaving-reachability-3job": _check_reach,
    "interleaving-reachability-weakened": _check_reach,
    "starvation-bound": _check_starvation,
    "degradation-safety": _check_safety,
    "monotone-recovery": _check_recovery,
}


def enumerate_states(prop: Property, params: dict) -> Iterator[tuple]:
    """The finite initial-state space the exhaustive backend searches."""
    return _STATE_FNS[prop.name](params)


def check_state(prop: Property, state: tuple, params: dict) -> Optional[dict]:
    """Witness dict when ``state`` violates ``prop`` within the bound."""
    return _CHECK_FNS[prop.name](state, params)


PROPERTIES: dict[str, Property] = {
    p.name: p
    for p in (
        Property(
            name="interleaving-reachability",
            version=1,
            summary=(
                "no 2-job schedule (separated by >= min_lag) avoids the "
                "interleavable condition for k iterations"
            ),
            expected="unsat",
            params={
                "variant": "paper",
                "jobs": 2,
                "alpha": 0.4,
                "period": 1.0,
                "k": 16,
                "grid": 400,
                "min_lag_fraction": 0.02,
            },
            fast_params={"grid": 60},
        ),
        Property(
            name="interleaving-reachability-3job",
            version=1,
            summary=(
                "no 3-job schedule (pairwise separated by >= min_lag) "
                "avoids full pairwise interleaving for k iterations"
            ),
            expected="unsat",
            params={
                "variant": "paper",
                "jobs": 3,
                "alpha": 0.3,
                "period": 1.0,
                "k": 48,
                "grid": 48,
                "min_lag_fraction": 0.02,
            },
            fast_params={"grid": 16, "k": 48},
        ),
        Property(
            name="interleaving-reachability-weakened",
            version=1,
            summary=(
                "weakened model (decreasing F5): a schedule that never "
                "interleaves exists — expected SAT, exported as a fluid "
                "regression scenario"
            ),
            expected="sat",
            params={
                "variant": "decreasing-f",
                "jobs": 2,
                "alpha": 0.4,
                "period": 1.0,
                "k": 16,
                "grid": 400,
                "min_lag_fraction": 0.05,
            },
            fast_params={"grid": 60},
        ),
        Property(
            name="starvation-bound",
            version=1,
            summary=(
                "no flow is held below its 1/n iteration share for k "
                "consecutive iterations, nor below the F-range floor "
                "F_min/(F_min+(n-1)F_max) instantaneously"
            ),
            expected="unsat",
            params={
                "variant": "paper",
                "jobs": 2,
                "alpha": 0.4,
                "period": 1.0,
                "k": 3,
                "grid": 2001,
            },
            fast_params={"grid": 201},
        ),
        Property(
            name="degradation-safety",
            version=1,
            summary=(
                "with the tracker degraded (F clamped to DEGRADED_F) the "
                "step map and both share quantities are exactly those of "
                "vanilla fair share"
            ),
            expected="unsat",
            params={"alpha": 0.4, "period": 1.0, "grid": 4001},
            fast_params={"grid": 401},
        ),
        Property(
            name="monotone-recovery",
            version=1,
            summary=(
                "after one bounded iteration-time shift from any "
                "interleaved schedule, the model re-interleaves within k "
                "iterations"
            ),
            expected="unsat",
            params={
                "variant": "paper",
                "jobs": 2,
                "alpha": 0.4,
                "period": 1.0,
                "k": 12,
                "grid": 241,
                "perturbation_grid": 81,
                "max_perturbation_fraction": 0.2,
                "min_lag_fraction": 0.02,
            },
            fast_params={"grid": 61, "perturbation_grid": 21},
        ),
    )
}


def property_by_name(name: str) -> Property:
    """Look up one property (``KeyError`` with the catalog when unknown)."""
    try:
        return PROPERTIES[name]
    except KeyError:
        raise KeyError(
            f"unknown property {name!r}; expected one of "
            f"{sorted(PROPERTIES)}"
        ) from None

"""Bounded-model-checking backends for the Algorithm 1 properties.

Two backends answer the same violation queries
(:mod:`repro.verify.properties`):

* :class:`ExhaustiveBackend` — hermetic, stdlib-only: enumerates the
  property's finite grid of initial states and simulates the discrete
  step map k iterations from each.  ``unsat`` is a proof over the
  quantized initial-state space (the step map itself is evaluated
  exactly); ``sat`` returns the first grid witness.
* :class:`Z3Backend` — encodes the same unrolled dynamics as z3 real
  arithmetic over *continuous* initial states.  Optional: z3-solver is
  the ``[verify]`` extra; when it is missing the backend reports
  ``skipped`` with an install hint instead of failing, so tier-1 stays
  hermetic.

Both honour a per-query timeout (wall clock for the exhaustive search,
z3's own ``timeout`` parameter for the solver); an expired budget yields
verdict ``unknown``, never a wrong answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from .model import VARIANTS
from .properties import MARGIN, Property, check_state, enumerate_states, share_floor

__all__ = [
    "Verdict",
    "ExhaustiveBackend",
    "Z3Backend",
    "UnsupportedProperty",
    "have_z3",
    "solve",
    "Z3_INSTALL_HINT",
]

#: One consistent message everywhere z3's absence is reported.
Z3_INSTALL_HINT = (
    "z3-solver is not installed; the z3 backend is optional — "
    "install it with `pip install repro[verify]` or use "
    "`--backend exhaustive`"
)

#: Default per-query budget (seconds); `repro verify --timeout` overrides.
DEFAULT_TIMEOUT_S = 30.0


class UnsupportedProperty(Exception):
    """The backend cannot encode this property (e.g. 3 jobs under z3)."""


@dataclass(frozen=True)
class Verdict:
    """The outcome of one bounded query.

    ``verdict`` is ``"unsat"`` (proved over the searched space), ``"sat"``
    (``witness`` holds a concrete counterexample), ``"unknown"`` (budget
    expired) or ``"skipped"`` (backend unavailable — ``reason`` says why).
    """

    property: str
    version: int
    verdict: str
    backend: str
    params: dict = field(default_factory=dict)
    states_checked: int = 0
    elapsed_s: float = 0.0
    witness: Optional[dict] = None
    reason: Optional[str] = None

    @property
    def matches_expected(self) -> bool:
        from .properties import property_by_name

        return self.verdict == property_by_name(self.property).expected

    def as_dict(self) -> dict:
        return {
            "property": self.property,
            "version": self.version,
            "verdict": self.verdict,
            "backend": self.backend,
            "params": dict(self.params),
            "states_checked": self.states_checked,
            "elapsed_s": self.elapsed_s,
            "witness": dict(self.witness) if self.witness is not None else None,
            "reason": self.reason,
        }


class ExhaustiveBackend:
    """Exhaustive bounded search over the property's initial-state grid."""

    name = "exhaustive"

    def __init__(self, timeout_s: float = DEFAULT_TIMEOUT_S) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s!r}")
        self.timeout_s = timeout_s

    def solve(self, prop: Property, params: dict) -> Verdict:
        started = time.monotonic()
        deadline = started + self.timeout_s
        checked = 0
        for state in enumerate_states(prop, params):
            # The clock is sampled every state, not every step: one
            # state's k-iteration simulation is microseconds, so the
            # budget overshoot is negligible while the common (in-budget)
            # path stays cheap.
            if time.monotonic() > deadline:
                return Verdict(
                    property=prop.name,
                    version=prop.version,
                    verdict="unknown",
                    backend=self.name,
                    params=params,
                    states_checked=checked,
                    elapsed_s=time.monotonic() - started,
                    reason=f"timeout after {self.timeout_s:g} s",
                )
            witness = check_state(prop, state, params)
            checked += 1
            if witness is not None:
                return Verdict(
                    property=prop.name,
                    version=prop.version,
                    verdict="sat",
                    backend=self.name,
                    params=params,
                    states_checked=checked,
                    elapsed_s=time.monotonic() - started,
                    witness=witness,
                )
        return Verdict(
            property=prop.name,
            version=prop.version,
            verdict="unsat",
            backend=self.name,
            params=params,
            states_checked=checked,
            elapsed_s=time.monotonic() - started,
        )


def have_z3() -> bool:
    """Whether the optional ``[verify]`` extra (z3-solver) is importable."""
    try:
        import z3  # noqa: F401 - availability probe

        return True
    except ImportError:
        return False


class Z3Backend:
    """The same queries as z3 real-arithmetic constraints (continuous lag).

    Covers the 2-job properties; the 3-job search space (two coupled
    offsets under the pairwise step map) stays with the exhaustive
    backend (:class:`UnsupportedProperty` otherwise).  Construction fails
    with :data:`Z3_INSTALL_HINT` when z3 is absent — callers that want a
    skip instead of an error check :func:`have_z3` first, which is what
    :func:`solve` and the CLI do.
    """

    name = "z3"

    def __init__(self, timeout_s: float = DEFAULT_TIMEOUT_S) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s!r}")
        try:
            import z3
        except ImportError as error:  # pragma: no cover - z3 present in [verify]
            raise RuntimeError(Z3_INSTALL_HINT) from error
        self.z3 = z3
        self.timeout_s = timeout_s

    # -- symbolic pieces (mirror the concrete functions in .model) ----------

    def _f(self, ratio, variant: str):
        slope, intercept = VARIANTS[variant]
        return slope * ratio + intercept

    def _shift_forward(self, lag, comm, variant: str):
        slope, intercept = VARIANTS[variant]
        return (slope * lag * (comm - lag)) / (comm * intercept + lag * slope)

    def _step(self, lag, params: dict, variant: str):
        z3 = self.z3
        comm = params["alpha"] * params["period"]
        period = params["period"]
        return z3.If(
            lag < comm,
            lag + self._shift_forward(lag, comm, variant),
            z3.If(
                lag > period - comm,
                lag - self._shift_forward(period - lag, comm, variant),
                lag,
            ),
        )

    def _circle_distance(self, lag, period):
        z3 = self.z3
        return z3.If(lag <= period - lag, lag, period - lag)

    def _interleaved(self, lag, params: dict):
        comm = params["alpha"] * params["period"]
        tol = self._tolerance(params)
        return self._circle_distance(lag, params["period"]) >= comm - tol

    @staticmethod
    def _tolerance(params: dict) -> float:
        from .model import INTERLEAVE_TOLERANCE_FRACTION

        return INTERLEAVE_TOLERANCE_FRACTION * params["period"]

    def _min_overlap_share(self, lag, params: dict, variant: str):
        z3 = self.z3
        comm = params["alpha"] * params["period"]
        d = self._circle_distance(lag, params["period"])
        follower = self._f(0.0, variant)
        leader = self._f(d / comm, variant)
        return z3.If(d >= comm, 1.0, follower / (follower + leader))

    def _iteration_share(self, lag, params: dict):
        z3 = self.z3
        comm = params["alpha"] * params["period"]
        d = self._circle_distance(lag, params["period"])
        return z3.If(d >= comm, 1.0, comm / (2.0 * comm - d))

    def _unroll(self, lag0, params: dict, variant: str) -> list:
        """``[lag_0, step(lag_0), ..., step^k(lag_0)]`` as z3 terms."""
        lags = [lag0]
        for _ in range(int(params["k"])):
            lags.append(self._step(lags[-1], params, variant))
        return lags

    # -- query encodings ----------------------------------------------------

    def _encode(self, prop: Property, params: dict, solver) -> list:
        """Add BAD-state constraints; returns the decision variables."""
        z3 = self.z3
        if int(params.get("jobs", 2)) != 2:
            raise UnsupportedProperty(
                f"{prop.name}: the z3 backend encodes the 2-job model only"
            )
        period = params["period"]
        variant = params.get("variant", "paper")
        lag0 = z3.Real("lag0")

        if prop.name.startswith("interleaving-reachability"):
            min_lag = params["min_lag_fraction"] * period
            solver.add(lag0 >= min_lag, lag0 <= period - min_lag)
            lags = self._unroll(lag0, params, variant)
            solver.add(*[z3.Not(self._interleaved(lag, params)) for lag in lags])
            return [lag0]

        if prop.name == "starvation-bound":
            solver.add(lag0 >= 0.0, lag0 <= period)
            lags = self._unroll(lag0, params, variant)
            k = int(params["k"])
            floor_inst = share_floor(variant, 2)
            inst_bad = [
                self._min_overlap_share(lag, params, variant)
                < floor_inst - MARGIN
                for lag in lags
            ]
            iter_bad = [
                self._iteration_share(lag, params) < 0.5 - MARGIN for lag in lags
            ]
            streaks = [
                z3.And(*iter_bad[j : j + k])
                for j in range(len(lags) - k + 1)
            ]
            solver.add(z3.Or(*(inst_bad + streaks)))
            return [lag0]

        if prop.name == "degradation-safety":
            solver.add(lag0 >= 0.0, lag0 <= period)
            diffs = [
                self._step(lag0, params, "degraded")
                != self._step(lag0, params, "fair"),
                self._min_overlap_share(lag0, params, "degraded")
                != self._min_overlap_share(lag0, params, "fair"),
            ]
            solver.add(z3.Or(*diffs))
            return [lag0]

        if prop.name == "monotone-recovery":
            comm = params["alpha"] * period
            tol = self._tolerance(params)
            min_lag = params["min_lag_fraction"] * period
            max_pert = params["max_perturbation_fraction"] * period
            pert = z3.Real("perturbation")
            solver.add(
                self._circle_distance(lag0, period) >= comm - tol,
                lag0 >= 0.0,
                lag0 < period,
                pert >= -max_pert,
                pert <= max_pert,
            )
            raw = lag0 + pert
            shifted = z3.If(raw < 0.0, raw + period, z3.If(raw >= period, raw - period, raw))
            solver.add(self._circle_distance(shifted, period) >= min_lag)
            lags = self._unroll(shifted, params, variant)
            solver.add(*[z3.Not(self._interleaved(lag, params)) for lag in lags])
            return [lag0, pert]

        raise UnsupportedProperty(f"{prop.name}: no z3 encoding registered")

    def solve(self, prop: Property, params: dict) -> Verdict:
        z3 = self.z3
        started = time.monotonic()
        solver = z3.Solver()
        solver.set("timeout", int(self.timeout_s * 1000))
        variables = self._encode(prop, params, solver)
        outcome = solver.check()
        elapsed = time.monotonic() - started
        if outcome == z3.sat:
            assignment = solver.model()
            witness = {
                str(var): _real_to_float(assignment.eval(var, model_completion=True))
                for var in variables
            }
            return Verdict(
                property=prop.name,
                version=prop.version,
                verdict="sat",
                backend=self.name,
                params=params,
                elapsed_s=elapsed,
                witness=witness,
            )
        if outcome == z3.unsat:
            return Verdict(
                property=prop.name,
                version=prop.version,
                verdict="unsat",
                backend=self.name,
                params=params,
                elapsed_s=elapsed,
            )
        return Verdict(
            property=prop.name,
            version=prop.version,
            verdict="unknown",
            backend=self.name,
            params=params,
            elapsed_s=elapsed,
            reason=f"z3 returned {outcome!r} (timeout {self.timeout_s:g} s)",
        )


def _real_to_float(value) -> float:
    """A z3 rational/algebraic model value as a float."""
    try:
        fraction = value.as_fraction()
        return float(fraction.numerator) / float(fraction.denominator)
    except Exception:
        # Algebraic (irrational) values: take a decimal approximation.
        return float(str(value.approx(20).as_decimal(17)).rstrip("?"))


def solve(
    prop: Property,
    backend: str = "auto",
    fast: bool = False,
    timeout_s: Optional[float] = None,
    **overrides,
) -> Verdict:
    """Answer one property with the requested backend.

    ``backend``: ``"exhaustive"``, ``"z3"`` or ``"auto"`` (z3 when
    installed and the property is encodable, exhaustive otherwise).  A
    requested-but-unavailable backend yields verdict ``"skipped"`` with
    the reason, matching the satellite contract that z3's absence is a
    clear message, not a failure.
    """
    params = prop.resolved(fast=fast, **overrides)
    budget = timeout_s if timeout_s is not None else DEFAULT_TIMEOUT_S

    if backend == "exhaustive":
        return ExhaustiveBackend(budget).solve(prop, params)

    if backend == "z3":
        if not have_z3():
            return Verdict(
                property=prop.name,
                version=prop.version,
                verdict="skipped",
                backend="z3",
                params=params,
                reason=Z3_INSTALL_HINT,
            )
        try:
            return Z3Backend(budget).solve(prop, params)
        except UnsupportedProperty as error:
            return Verdict(
                property=prop.name,
                version=prop.version,
                verdict="skipped",
                backend="z3",
                params=params,
                reason=str(error),
            )

    if backend == "auto":
        if have_z3():
            try:
                return Z3Backend(budget).solve(prop, params)
            except UnsupportedProperty:
                pass
        return ExhaustiveBackend(budget).solve(prop, params)

    raise ValueError(
        f"unknown backend {backend!r}; expected 'exhaustive', 'z3' or 'auto'"
    )

"""``repro verify`` — bounded model checking for Algorithm 1.

A small-N discrete-step model of MLTCP's iteration dynamics
(:mod:`repro.verify.model`), a catalog of named, versioned violation
queries (:mod:`repro.verify.properties`), two solver backends — hermetic
exhaustive search and optional z3 real arithmetic
(:mod:`repro.verify.solver`) — and committed proof artifacts: UNSAT
invariant certificates consumed by ``repro.guards`` and SAT
counterexamples replayed as fluid-simulator regression fixtures
(:mod:`repro.verify.certificates`).  The full story: docs/VERIFICATION.md.

Public API::

    from repro.verify import PROPERTIES, solve, have_z3
    verdict = solve(PROPERTIES["starvation-bound"])   # Verdict(unsat, ...)
    from repro.verify.certificates import certified_f_max
"""

from __future__ import annotations

from .model import MODEL_CONSTANTS, MODEL_VERSION, ModelParams, model_fingerprint
from .properties import PROPERTIES, Property, property_by_name, share_floor
from .solver import (
    ExhaustiveBackend,
    Verdict,
    Z3Backend,
    Z3_INSTALL_HINT,
    have_z3,
    solve,
)

__all__ = [
    "MODEL_CONSTANTS",
    "MODEL_VERSION",
    "ModelParams",
    "model_fingerprint",
    "PROPERTIES",
    "Property",
    "property_by_name",
    "share_floor",
    "ExhaustiveBackend",
    "Z3Backend",
    "Z3_INSTALL_HINT",
    "Verdict",
    "have_z3",
    "solve",
]

"""Ablation: how convergence scales with the number of competing jobs.

MLTCP's scalability pitch is that it is fully distributed — no controller
recomputation as jobs are added.  This bench grows the number of identical
GPT-2 jobs sharing the bottleneck (keeping the mix feasible) and reports
the convergence iteration and final gap, plus a randomized-start variant
("regardless of job start times", §3.1).
"""

import numpy as np

from _common import emit, emit_run_report, runner_from_env
from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.harness.report import render_table
from repro.metrics.convergence import detect_convergence
from repro.workloads.presets import BOTTLENECK_GBPS, gpt2_job, identical_jobs

JOB_COUNTS = (2, 3, 4, 5, 6, 7)


def _run_one(count: int, randomized: bool):
    jobs = identical_jobs(gpt2_job(), count)
    if randomized:
        rng = np.random.default_rng(count)
        jobs = [
            j.with_offset(float(rng.uniform(0, j.ideal_iteration_time)))
            for j in jobs
        ]
    result = run_fluid(
        jobs,
        BOTTLENECK_GBPS,
        policy=MLTCPWeighted(),
        max_iterations=80,
        seed=count,
    )
    rounds = result.mean_iteration_by_round()
    report = detect_convergence(rounds, target=1.8, tolerance=0.05)
    return {
        "jobs": count,
        "randomized": randomized,
        "converged_at": report.converged_at,
        "final_mean": report.final_mean,
    }


def _sweep(runner):
    return runner.run_points(
        _run_one,
        [
            {"count": count, "randomized": randomized}
            for count in JOB_COUNTS
            for randomized in (False, True)
        ],
    )


def _report(rows) -> str:
    return render_table(
        ["jobs", "start times", "converged at iter", "final mean iter (s)"],
        [
            [
                r["jobs"],
                "random" if r["randomized"] else "synchronized",
                str(r["converged_at"]),
                r["final_mean"],
            ]
            for r in rows
        ],
        title="Ablation — convergence vs number of competing GPT-2 jobs "
        "(ideal iteration 1.8 s)",
    )


def test_ablation_job_count(benchmark):
    runner = runner_from_env("ablation_job_count")
    rows = benchmark.pedantic(lambda: _sweep(runner), rounds=1, iterations=1)
    emit("ablation_job_count", _report(rows))
    emit_run_report("ablation_job_count", runner)

    for row in rows:
        assert row["converged_at"] is not None, row
        assert row["final_mean"] < 1.06 * 1.8, row
    sync = [r for r in rows if not r["randomized"]]
    # Convergence stays bounded (no blow-up with job count).
    assert max(r["converged_at"] for r in sync) <= 40

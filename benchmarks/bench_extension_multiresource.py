"""Extension bench (§5 discussion): multi-resource progress weighting.

Not a paper figure — the paper's §5 sketches this generalization in prose.
The bench quantifies it on two workloads (CPU-only contention, and a
CPU+network pipeline) and reports equal-share vs progress-weighted
iteration times.
"""

from _common import emit
from repro.harness.report import render_table
from repro.multiresource import (
    EqualShare,
    MultiResourceTask,
    ProgressWeighted,
    ResourcePhase,
    run_multiresource,
    two_phase_task,
)


def _cpu_tasks():
    return [
        two_phase_task(f"T{i + 1}", "cpu", work=16.0, demand=16.0,
                       think_time=1.0, jitter_sigma=0.01)
        for i in range(2)
    ]


def _pipeline_tasks():
    def task(name):
        return MultiResourceTask(
            name,
            (ResourcePhase("cpu", 16.0, 16.0), ResourcePhase("net", 10.0, 10.0)),
            jitter_sigma=0.01,
        )

    return [task("A"), task("B")]


def _sweep():
    rows = []
    for label, tasks, capacities, ideal in (
        ("2x CPU-bound", _cpu_tasks(), {"cpu": 16.0}, 2.0),
        ("2x CPU->net pipeline", _pipeline_tasks(), {"cpu": 16.0, "net": 10.0}, 2.0),
    ):
        for policy in (EqualShare(), ProgressWeighted()):
            result = run_multiresource(
                tasks, capacities, policy=policy, max_iterations=50, seed=2
            )
            rounds = result.mean_iteration_by_round()
            rows.append(
                {
                    "workload": label,
                    "policy": policy.name,
                    "first": float(rounds[0]),
                    "final": float(rounds[-5:].mean()),
                    "ideal": ideal,
                }
            )
    return rows


def _report(rows) -> str:
    return render_table(
        ["workload", "scheduler", "first iter (s)", "final (s)", "ideal (s)"],
        [[r["workload"], r["policy"], r["first"], r["final"], r["ideal"]] for r in rows],
        title="§5 extension — progress-weighted scheduling beyond the network",
    ) + (
        "\n\nProgress weighting interleaves CPU phases and pipelines tasks "
        "across resources; equal-share scheduling never escapes contention."
    )


def test_extension_multiresource(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit("extension_multiresource", _report(rows))

    for row in rows:
        if row["policy"] == "progress-weighted":
            assert row["final"] < 1.06 * row["ideal"], row
        else:
            assert row["final"] > 1.4 * row["ideal"], row

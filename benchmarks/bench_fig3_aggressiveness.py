"""Figure 3: performance of the six bandwidth aggressiveness functions.

Three identical GPT-2 jobs compete under MLTCP with each F1…F6.  The paper
shows the increasing functions (F1–F4) driving the average iteration time
down to the ideal within ~20 iterations while the decreasing controls
(F5, F6) never improve.
"""

from _common import emit, emit_csv
from repro.harness.experiments import fig3_aggressiveness
from repro.harness.report import render_table, sparkline
from repro.workloads.presets import three_job_scenario


def _report(series) -> str:
    ideal = three_job_scenario()[0].ideal_iteration_time
    lines = [
        "Figure 3 — average iteration time (s) per training iteration,",
        f"three GPT-2 jobs, ideal = {ideal:.2f} s",
        "",
    ]
    rows = []
    for key in ("F1", "F2", "F3", "F4", "F5", "F6"):
        values = series[key]
        lines.append(f"{key}: {sparkline(values, width=70)}")
        rows.append(
            [
                key,
                float(values[0]),
                float(values[-5:].mean()),
                "interleaves" if values[-5:].mean() < 1.05 * ideal else "does not",
            ]
        )
    lines.append("")
    lines.append(
        render_table(["function", "first iter (s)", "final (s)", "outcome"], rows)
    )
    lines.append("")
    lines.append(
        "Paper: F1-F4 (increasing) interleave after ~20 iterations; "
        "F5/F6 (decreasing) never do."
    )
    return "\n".join(lines)


def test_fig3_aggressiveness(benchmark):
    series = benchmark.pedantic(
        lambda: fig3_aggressiveness(iterations=40), rounds=1, iterations=1
    )
    emit("fig3_aggressiveness", _report(series))
    emit_csv(
        "fig3_aggressiveness",
        {key: [float(v) for v in values] for key, values in series.items()},
    )

    ideal = three_job_scenario()[0].ideal_iteration_time
    for key in ("F1", "F2", "F3", "F4"):
        assert series[key][-5:].mean() < 1.03 * ideal
    for key in ("F5", "F6"):
        assert series[key][-5:].mean() > 1.15 * ideal

"""Extension bench: the distributed-vs-centralized scalability argument.

§1/§2: centralized approaches "achieve optimal scheduling at the cost of
being computationally expensive, making it challenging to scale to a large
cluster", while MLTCP "is easily deployable and scalable".  Two measurements
make that concrete:

1. Centralized cost: wall-clock time of the offset optimizer as the job
   count grows (superlinear — it reasons about all jobs jointly).
2. MLTCP cost: convergence iterations on a *cluster* of independent
   bottlenecks (multi-bottleneck fluid simulator).  Every uplink converges
   in parallel, so the iteration count stays flat as the cluster grows.
"""

import time

from _common import emit, emit_run_report, runner_from_env
from repro.fluid.network import PlacedJob, run_network_fluid
from repro.harness.report import render_table
from repro.metrics.convergence import detect_convergence
from repro.schedulers.centralized import CentralizedScheduler
from repro.workloads.presets import gpt2_heavy_job, gpt2_job, identical_jobs

UPLINK_COUNTS = (1, 2, 4, 8)
JOBS_PER_UPLINK = 2


def _centralized_cost(total_jobs: int) -> float:
    jobs = identical_jobs(gpt2_job(jitter_sigma=0.0), total_jobs)
    scheduler = CentralizedScheduler(jobs, 50.0 * (total_jobs / 2.0))
    start = time.perf_counter()
    scheduler.optimize(exhaustive_threshold=2, restarts=2)
    return time.perf_counter() - start


def _mltcp_cluster_convergence(n_uplinks: int) -> int | None:
    placements = []
    for u in range(n_uplinks):
        for k in range(JOBS_PER_UPLINK):
            job = gpt2_heavy_job(jitter_sigma=0.005).with_name(f"U{u}J{k}")
            placements.append(PlacedJob(job=job, links=(f"up{u}",)))
    caps = {f"up{u}": 50.0 for u in range(n_uplinks)}
    result = run_network_fluid(placements, caps, mltcp=True, max_iterations=40, seed=3)
    rounds = result.mean_iteration_by_round()
    report = detect_convergence(rounds, target=1.8, tolerance=0.05)
    return report.converged_at


def _cluster_point(n_uplinks: int):
    """One runner point: centralized cost + MLTCP convergence at one size."""
    total = n_uplinks * JOBS_PER_UPLINK
    return {
        "uplinks": n_uplinks,
        "jobs": total,
        "centralized_s": _centralized_cost(total),
        "mltcp_converged_at": _mltcp_cluster_convergence(n_uplinks),
    }


def _experiment(runner):
    return runner.run_points(
        _cluster_point, [{"n_uplinks": n} for n in UPLINK_COUNTS]
    )


def _report(rows) -> str:
    return render_table(
        ["uplinks", "jobs", "centralized optimize (s)", "MLTCP converged at iter"],
        [
            [r["uplinks"], r["jobs"], r["centralized_s"], str(r["mltcp_converged_at"])]
            for r in rows
        ],
        title="Scalability — centralized optimizer cost vs MLTCP convergence "
        "(cluster of independent 50 Gbps uplinks, 2 heavy jobs each)",
    ) + (
        "\n\nThe centralized cost grows with the cluster; MLTCP's convergence "
        "iteration count stays flat because every bottleneck descends in "
        "parallel with zero coordination."
    )


def test_extension_scalability(benchmark):
    runner = runner_from_env("extension_scalability")
    rows = benchmark.pedantic(
        lambda: _experiment(runner), rounds=1, iterations=1
    )
    emit("extension_scalability", _report(rows))
    emit_run_report("extension_scalability", runner)

    # Centralized: cost at 16 jobs clearly exceeds cost at 2 jobs.
    assert rows[-1]["centralized_s"] > 2.0 * rows[0]["centralized_s"]
    # MLTCP: converges everywhere, with no growth trend in iterations.
    iters = [r["mltcp_converged_at"] for r in rows]
    assert all(i is not None for i in iters)
    assert max(iters) <= min(iters) + 10

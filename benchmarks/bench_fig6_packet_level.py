"""Figure 6: packet-level MLTCP-Reno interleaving two GPT-2-like jobs.

Runs the full TCP stack (Algorithm 1 in the congestion-avoidance hook) over
the discrete-event dumbbell and shows the two jobs sliding from a congested
synchronized start into an interleaved schedule — the paper's Figure 6.
Scaled units per DESIGN.md §2 (1 Gbps / MB-scale collectives, alpha = 1/2).
"""

import numpy as np

from _common import emit, emit_run_report, runner_from_env
from repro.harness.experiments import fig6_packet_two_jobs
from repro.harness.report import render_table, sparkline


def _report(result) -> str:
    lines = [
        "Figure 6 — two jobs under MLTCP-Reno (packet-level, scaled units)",
        "",
    ]
    for name, times in result.iteration_times.items():
        lines.append(f"{name} iteration times (ms): "
                     f"{sparkline(times * 1000, width=64)}")
    firsts = np.mean([t[:3].mean() for t in result.iteration_times.values()])
    lasts = np.mean([t[-5:].mean() for t in result.iteration_times.values()])
    lines += [
        "",
        render_table(
            ["quantity", "value"],
            [
                ["ideal iteration time", f"{result.ideal_iteration_time * 1000:.1f} ms"],
                ["first 3 iterations (congested)", f"{firsts * 1000:.1f} ms"],
                ["last 5 iterations (interleaved)", f"{lasts * 1000:.1f} ms"],
                ["converged at iteration", str(result.converged_at)],
            ],
        ),
        "",
        "Paper: the jobs interleave 'over few iterations'; the alternating "
        "throughput bursts after convergence mirror Figure 6's right side.",
    ]
    return "\n".join(lines)


def test_fig6_packet_two_jobs(benchmark):
    runner = runner_from_env("fig6_packet_level")
    result = benchmark.pedantic(
        lambda: runner.run_points(
            fig6_packet_two_jobs, [{"iterations": 40, "seed": 2}]
        )[0],
        rounds=1,
        iterations=1,
    )
    emit("fig6_packet_level", _report(result))
    emit_run_report("fig6_packet_level", runner)

    assert result.converged_at is not None
    assert result.converged_at <= 35
    assert result.final_mean < 1.1 * result.ideal_iteration_time

"""Figure 2: centralized (Cassini-like) vs SRPT (pFabric) vs MLTCP on the
four-job mix, plus §2's approximation-error claims.

Paper values: optimal gives J1 1.2 s and J2–J4 1.8 s; pFabric slows J1 by
~1.5x; MLTCP converges to within 5% of the optimum in ~20 iterations and
stays there.
"""

import numpy as np

from _common import emit
from repro.harness.experiments import fig2_schedules
from repro.harness.report import render_table, sparkline


def _timelines(result) -> list[str]:
    """Per-job link-rate timelines — the visual panels of Figure 2.

    SRPT over its early window (the regime the paper plots) and MLTCP over
    its converged tail: under MLTCP the bursts tile the time axis.
    """
    lines = ["", "Link-rate timelines (each char ~ the same wall-clock slice):"]
    for label, run, window in (
        ("SRPT ", result.srpt_result, (0.0, 8.0)),
        ("MLTCP", result.mltcp_result, (None, None)),
    ):
        start, end = window
        if start is None:
            end = run.end_time
            start = max(0.0, end - 8.0)
        for name in ("J1", "J2", "J3", "J4"):
            times, rates = run.rate_timeline(name, dt=0.05)
            mask = (times >= start) & (times < end)
            lines.append(f"  {label} {name}: {sparkline(rates[mask], width=64)}")
        lines.append("")
    return lines


def _report(result) -> str:
    names = ["J1", "J2", "J3", "J4"]
    rows = [
        ["paper optimal (Cassini)", 1.2, 1.8, 1.8, 1.8],
        ["measured optimal"] + [result.optimal_times[n] for n in names],
        ["measured SRPT (early)"] + [result.srpt_times[n] for n in names],
        ["measured MLTCP (converged)"] + [result.mltcp_times[n] for n in names],
    ]
    lines = [
        "Figure 2 — average iteration times of the four-job mix (seconds)",
        "",
        render_table(["schedule"] + names, rows),
        "",
        render_table(
            ["claim", "paper", "measured"],
            [
                ["SRPT J1 slowdown", "1.5x", f"{result.srpt_j1_slowdown:.2f}x"],
                [
                    "MLTCP gap vs optimal",
                    "< 5%",
                    f"{100 * result.mltcp_gap_vs_optimal:.2f}%",
                ],
                [
                    "MLTCP convergence iteration",
                    "~20",
                    str(result.mltcp_converged_at),
                ],
            ],
        ),
    ]
    lines.extend(_timelines(result))
    return "\n".join(lines)


def test_fig2_schedules(benchmark):
    result = benchmark.pedantic(
        lambda: fig2_schedules(iterations=60), rounds=1, iterations=1
    )
    emit("fig2_schedules", _report(result))

    # Shape assertions (who wins, by what factor).
    assert result.schedule.is_interleaved
    assert result.optimal_times["J1"] == np.round(result.optimal_times["J1"], 10)
    assert abs(result.optimal_times["J1"] - 1.2) < 0.03
    assert abs(result.optimal_times["J2"] - 1.8) < 0.03
    assert result.srpt_j1_slowdown > 1.15
    assert result.mltcp_gap_vs_optimal < 0.05
    assert result.mltcp_converged_at is not None
    assert result.mltcp_converged_at <= 20

"""Ablation: convergence and stability vs iteration-time noise (fluid).

Complements `bench_noise_error_bound.py` (which checks the §4 analytic
bound on the two-job model): here the full fluid simulator runs the
four-job mix across jitter levels sigma from 0.1% to 5% of the iteration
time and reports convergence iteration and residual gap.  The paper's
requirement (i) — a function range "large enough to absorb the noise" —
predicts graceful degradation, not a cliff.
"""

import numpy as np

from _common import emit, emit_run_report, runner_from_env
from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.harness.report import render_table
from repro.metrics.convergence import detect_convergence
from repro.workloads.presets import BOTTLENECK_GBPS, four_job_scenario

SIGMAS = (0.001, 0.005, 0.01, 0.02, 0.05, 0.09)
TARGET = float(np.mean([1.2, 1.8, 1.8, 1.8]))


def _run_one(sigma: float):
    jobs = [j.with_jitter(sigma) for j in four_job_scenario()]
    result = run_fluid(
        jobs, BOTTLENECK_GBPS, policy=MLTCPWeighted(), max_iterations=80, seed=5
    )
    rounds = result.mean_iteration_by_round()
    report = detect_convergence(rounds, target=TARGET, tolerance=0.08)
    return {
        "sigma": sigma,
        "sigma_pct": 100 * sigma / 1.8,
        "converged_at": report.converged_at,
        "final_gap_pct": 100 * abs(rounds[-15:].mean() - TARGET) / TARGET,
    }


def _sweep(runner):
    return runner.run_points(_run_one, [{"sigma": s} for s in SIGMAS])


def _report(rows) -> str:
    return render_table(
        ["sigma (s)", "sigma (% of iter)", "converged at", "final gap (%)"],
        [
            [r["sigma"], r["sigma_pct"], str(r["converged_at"]), r["final_gap_pct"]]
            for r in rows
        ],
        title="Ablation — MLTCP convergence vs compute-time jitter "
        "(four-job mix, slope 1.75 / intercept 0.25)",
    ) + (
        "\n\nDegradation is graceful: residual gap grows roughly linearly "
        "with sigma (the §4 picture), with no convergence cliff up to 5% "
        "jitter."
    )


def test_ablation_noise(benchmark):
    runner = runner_from_env("ablation_noise")
    rows = benchmark.pedantic(lambda: _sweep(runner), rounds=1, iterations=1)
    emit("ablation_noise", _report(rows))
    emit_run_report("ablation_noise", runner)

    for row in rows:
        assert row["converged_at"] is not None, row
    # Small noise: near-perfect; large noise: still within ~12%.
    assert rows[0]["final_gap_pct"] < 2.0
    assert rows[-1]["final_gap_pct"] < 12.0
"""Figure 4: six GPT-2 jobs on one bottleneck — Reno vs MLTCP-Reno.

Panels (a)/(b): bandwidth allocation over time (here: mean iteration time
per round).  Panel (c): CDF of iteration times over the jobs' lifetime; the
paper reports a 1.59x tail speedup for MLTCP over standard Reno.
"""

import numpy as np

from _common import emit, emit_csv
from repro.harness.experiments import fig4_six_jobs
from repro.harness.report import render_table, sparkline
from repro.metrics.stats import percentile


def _report(result) -> str:
    reno_rounds = result.reno_result.mean_iteration_by_round()
    mltcp_rounds = result.mltcp_result.mean_iteration_by_round()
    lines = [
        "Figure 4 — six identical GPT-2 jobs (ideal iteration 1.8 s)",
        "",
        f"(a) Reno  mean iteration by round:  {sparkline(reno_rounds, width=66)}",
        f"(b) MLTCP mean iteration by round:  {sparkline(mltcp_rounds, width=66)}",
        "",
        "(c) CDF of iteration times over the job lifetime (s):",
        render_table(
            ["percentile", "Reno", "MLTCP-Reno"],
            [
                [f"p{q}", percentile(result.reno_times, q), percentile(result.mltcp_times, q)]
                for q in (10, 50, 90, 99)
            ],
        ),
        "",
        render_table(
            ["claim", "paper", "measured"],
            [
                ["tail (p99) speedup", "1.59x", f"{result.tail_speedup_p99:.2f}x"],
                ["median speedup", "-", f"{result.median_speedup:.2f}x"],
            ],
        ),
    ]
    return "\n".join(lines)


def test_fig4_six_jobs(benchmark):
    result = benchmark.pedantic(
        lambda: fig4_six_jobs(iterations=400), rounds=1, iterations=1
    )
    emit("fig4_six_jobs", _report(result))
    emit_csv(
        "fig4_six_jobs_cdf",
        {
            "reno_iteration_s": sorted(float(v) for v in result.reno_times),
            "mltcp_iteration_s": sorted(float(v) for v in result.mltcp_times),
        },
    )

    # Shape: MLTCP reaches the ideal, Reno stays congested, tail wins > 1.25x.
    assert result.mltcp_result.mean_iteration_by_round()[-5:].mean() < 1.85
    assert result.reno_result.mean_iteration_by_round()[-5:].mean() > 1.9
    assert result.tail_speedup_p99 > 1.25
    assert np.median(result.mltcp_times) < np.median(result.reno_times)

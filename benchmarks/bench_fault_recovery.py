"""Robustness bench: iterations-to-reconverge after each fault class.

For every fault class in :data:`repro.faults.schedule.FAULT_KINDS`, the
three-job fluid mix runs once clean and once with the fault striking after
~25 healthy iterations, under MLTCP and under plain Reno/DCTCP (fair
share); the packet simulator cross-checks the two headline classes on the
Figure-6 two-job dumbbell.  The claim under test is §4's: MLTCP's
interleaving re-forms *by itself* after a disturbance, so MLTCP's
disturbed-round count stays small and every MLTCP row recovers.

This bench also exercises the harness's own robustness: it runs with
``isolate_failures=True`` and one retry, and setting
``REPRO_FAULTS_INJECT_CRASH=1`` (as ``make bench-faults-smoke`` does) adds
a deliberately crashing point — the sweep must survive it, record the
failure in the run-report's ``degradations`` section, and still validate
against docs/run_report.schema.json.
"""

import os

from _common import emit, emit_run_report, runner_from_env
from repro.harness.experiments import fault_recovery
from repro.harness.report import render_table
from repro.harness.runner import FailedPoint
from repro.harness.telemetry import validate_run_report

FAULTS = ("link_down", "bandwidth", "loss_burst", "ecn_storm", "straggler", "job_restart")
POLICIES = ("mltcp", "reno", "dctcp")
PACKET_FAULTS = ("link_down", "job_restart")
PACKET_POLICIES = ("mltcp", "reno")


def _run_one(fault, policy, substrate, iterations, seed=5, crash=False):
    if crash:
        os._exit(17)  # simulate a hard worker death (segfault/OOM-kill)
    result = fault_recovery(
        fault=fault, policy=policy, substrate=substrate,
        iterations=iterations, seed=seed,
    )
    return {
        "fault": fault,
        "policy": policy,
        "substrate": substrate,
        "disturbed_rounds": result.disturbed_rounds,
        "reconverged_at": result.reconverged_at,
        "rounds": len(result.series),
        "recovered": result.recovered,
        "fault_log": result.fault_log,
    }


def _points(inject_crash: bool):
    points = [
        {"fault": f, "policy": p, "substrate": "fluid", "iterations": 80}
        for f in FAULTS
        for p in POLICIES
    ]
    points += [
        {"fault": f, "policy": p, "substrate": "packet", "iterations": 40}
        for f in PACKET_FAULTS
        for p in PACKET_POLICIES
    ]
    if inject_crash:
        points.append(
            {
                "fault": "link_down", "policy": "mltcp", "substrate": "fluid",
                "iterations": 80, "crash": True,
            }
        )
    return points


def _report(points, rows) -> str:
    table_rows = []
    for point, row in zip(points, rows):
        if isinstance(row, FailedPoint):
            table_rows.append(
                [point["substrate"], point["fault"], point["policy"],
                 "-", "-", f"FAILED ({row.kind})"]
            )
        else:
            table_rows.append(
                [row["substrate"], row["fault"], row["policy"],
                 row["disturbed_rounds"],
                 f"{row['reconverged_at']}/{row['rounds']}",
                 "yes" if row["recovered"] else "NO"]
            )
    return render_table(
        ["substrate", "fault", "policy", "disturbed rounds",
         "reconverged at", "recovered"],
        table_rows,
        title="Fault recovery — rounds perturbed beyond tolerance "
        "(vs a fault-free control run with the same seed)",
    ) + (
        "\n\nMLTCP re-converges without coordination after every fault "
        "class; a job restart barely perturbs it (the restarted sender's "
        "bytes_ratio reset slots it straight back into the interleave), "
        "while fair share drifts to a different pattern entirely."
    )


def test_fault_recovery(benchmark):
    inject_crash = bool(os.environ.get("REPRO_FAULTS_INJECT_CRASH"))
    runner = runner_from_env(
        "fault_recovery", isolate_failures=True, retries=1, retry_backoff_s=0.01
    )
    if inject_crash and (runner.workers is None or runner.workers < 2):
        raise RuntimeError(
            "REPRO_FAULTS_INJECT_CRASH needs REPRO_WORKERS>=2: crash "
            "isolation requires a process pool (an in-process crash would "
            "kill pytest itself)"
        )
    points = _points(inject_crash)
    rows = benchmark.pedantic(
        lambda: runner.run_points(_run_one, points), rounds=1, iterations=1
    )

    # Injected fault transitions feed the degradations section, tagged with
    # the point that replayed them.
    for point, row in zip(points, rows):
        if isinstance(row, FailedPoint):
            continue
        for line in row["fault_log"]:
            runner.telemetry.record_degradation("fault", line, params=point)

    emit("fault_recovery", _report(points, rows))
    emit_run_report("fault_recovery", runner)

    report = runner.telemetry.as_report()
    assert validate_run_report(report) == [], validate_run_report(report)
    assert report["degradations"], "expected recorded fault injections"

    failed = [r for r in rows if isinstance(r, FailedPoint)]
    good = [r for r in rows if not isinstance(r, FailedPoint)]
    if inject_crash:
        # The sweep must survive the crash: exactly the injected point
        # fails, with a crash-kind FailedPoint and a degradation record.
        assert len(failed) == 1 and failed[0].kind == "crash", failed
        assert failed[0].params.get("crash") is True
        assert failed[0].traceback
        assert report["totals"]["failed_points"] == 1
        assert any(d["kind"] == "crash" for d in report["degradations"])
    else:
        assert not failed, failed

    # The paper's robustness claim: MLTCP rides out every fault class.
    for row in good:
        if row["policy"] == "mltcp":
            assert row["recovered"], row
            assert row["disturbed_rounds"] <= 12, row

"""Guardrail overhead: what armed monitors cost on each substrate.

Not a paper figure — a pytest-benchmark suite quantifying the runtime
guardrail subsystem (docs/ROBUSTNESS.md).  The *disabled* cost is covered
by `bench_simulator_performance.py` staying inside the bench-compare gate
(no rail attached means the unmonitored hot paths run, so the existing
benchmarks measure exactly the guards-off tree); the benchmarks here
measure the *armed* cost: the engine's monitored event loop, the packet
heartbeat sweep, and the fluid allocation checks.
"""

from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.guards import GuardRail, install_packet_guards
from repro.simulator.engine import Simulator
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.reno import RenoCC
from repro.workloads.presets import four_job_scenario


def test_event_engine_monitored_throughput(benchmark):
    """The 10k-event chain of `test_event_engine_throughput`, but through
    the monitored slow path (`Simulator(monitor=rail)`)."""

    def run_10k_events():
        rail = GuardRail("record")
        sim = Simulator(monitor=rail)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(1e-6, tick)

        sim.schedule(1e-6, tick)
        sim.run()
        assert len(rail) == 0
        return count[0]

    assert benchmark(run_10k_events) == 10_000


def test_packet_transfer_guarded_benchmark(benchmark):
    """The 1 MB transfer of `test_packet_transfer_benchmark` with the full
    packet guardrail armed: monitored engine plus heartbeat sweeps."""

    def transfer():
        rail = GuardRail("record")
        sim = Simulator(monitor=rail)
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        sender = TcpSender(sim, net.hosts["s0"], "f", "r0", RenoCC())
        TcpReceiver(sim, net.hosts["r0"], "f", "s0")
        install_packet_guards(sim, net, {"f": sender}, rail)
        sender.send_bytes(1_000_000)
        sim.run(until=0.5)
        assert len(rail) == 0
        return sender.all_acked()

    assert benchmark(transfer)


def test_fluid_four_jobs_guarded_benchmark(benchmark):
    """The 20-iteration fluid run of `test_fluid_four_jobs_benchmark` with
    per-allocation capacity/non-negativity checks armed."""

    def run():
        rail = GuardRail("record")
        result = run_fluid(
            four_job_scenario(),
            50.0,
            policy=MLTCPWeighted(),
            max_iterations=20,
            seed=5,
            record_segments=False,
            guards=rail,
        )
        assert len(rail) == 0
        return len(result.iterations)

    assert benchmark(run) >= 80


def test_guardrail_record_throughput(benchmark):
    """Raw cost of recording violations (the worst case: every report
    accepted, none raised)."""

    def record_2k():
        rail = GuardRail("record", max_violations=1_000)
        for i in range(2_000):
            rail.violation("cwnd-bounds", "f", float(i), "over the cap")
        assert len(rail) == 1_000
        assert rail.dropped == 1_000
        return len(rail)

    assert benchmark(record_2k) == 1_000

"""§5 fairness between MLTCP and legacy TCP flows.

Two measurable claims from the paper's discussion:

1. "TCP's throughput is inversely proportional to the square root of loss
   probability" — verified for our Reno over a random-loss bottleneck
   against the Mathis model.
2. "Given the same packet loss probability, an MLTCP-Reno flow claims more
   bandwidth share than a standard Reno flow.  However, MLTCP-Reno flows
   would not starve the other legacy flows" — verified by competing the
   two on one bottleneck.
"""

import math

from _common import emit
from repro.harness.experiments import (
    fairness_competition_share,
    fairness_loss_response,
)
from repro.harness.report import render_table

LOSS_PROBS = (0.0005, 0.001, 0.002, 0.004)


def _mathis_report(rows) -> str:
    return render_table(
        ["loss prob", "Reno (Mbps)", "Mathis model (Mbps)"],
        [[r["loss_prob"], r["reno_mbps"], r["mathis_prediction_mbps"]] for r in rows],
        title="§5 — Reno throughput vs loss probability (1/sqrt(p) law)",
    )


def _share_report(rows) -> str:
    from repro.metrics.stats import jain_fairness

    return render_table(
        ["loss prob", "MLTCP-Reno (Mbps)", "legacy Reno (Mbps)", "share ratio", "Jain index"],
        [
            [
                r["loss_prob"],
                r["mltcp_mbps"],
                r["reno_mbps"],
                r["share_ratio"],
                jain_fairness([r["mltcp_mbps"], r["reno_mbps"]]),
            ]
            for r in rows
        ],
        title="§5 — saturated MLTCP flow vs legacy Reno flow on one bottleneck",
    )


def test_reno_mathis_law(benchmark):
    rows = benchmark.pedantic(
        lambda: fairness_loss_response(loss_probs=LOSS_PROBS),
        rounds=1,
        iterations=1,
    )
    emit("fairness_mathis_law", _mathis_report(rows))

    # Quadrupling p should cut throughput by about half (sqrt law, loose).
    lo = next(r for r in rows if r["loss_prob"] == 0.001)
    hi = next(r for r in rows if r["loss_prob"] == 0.004)
    ratio = lo["reno_mbps"] / hi["reno_mbps"]
    assert 1.3 < ratio < 3.5
    # Log-log slope near -1/2.
    xs = [math.log(r["loss_prob"]) for r in rows]
    ys = [math.log(r["reno_mbps"]) for r in rows]
    n = len(xs)
    slope = (n * sum(x * y for x, y in zip(xs, ys)) - sum(xs) * sum(ys)) / (
        n * sum(x * x for x in xs) - sum(xs) ** 2
    )
    assert -1.0 < slope < -0.2


def test_mltcp_share_without_starvation(benchmark):
    rows = benchmark.pedantic(
        lambda: fairness_competition_share(
            loss_probs=(0.0, 0.002), horizon=2.0, seeds=(1, 2, 3)
        ),
        rounds=1,
        iterations=1,
    )
    emit("fairness_competition_share", _share_report(rows))

    lossless = next(r for r in rows if r["loss_prob"] == 0.0)
    assert lossless["share_ratio"] > 1.2  # MLTCP claims more
    assert lossless["reno_mbps"] > 100.0  # but Reno is far from starved

"""Ablation: the MLTCP augmentation across congestion-control families.

§6: "Other congestion control schemes are augmented in a similar way to
induce shifts in communication start times."  This bench runs the two-job
packet-level scenario under MLTCP-Reno, MLTCP-CUBIC and MLTCP-DCTCP (ECN
bottleneck for the latter) and a rate-based MLTCP-DCQCN single-flow sanity
check, reporting convergence for each.
"""

import numpy as np

from _common import emit
from repro.harness.packetlab import mltcp_config_for, run_packet_jobs
from repro.harness.report import render_table
from repro.metrics.convergence import detect_convergence
from repro.tcp.mltcp import MLTCPCubic, MLTCPDctcp, MLTCPReno
from repro.tcp.swift import MLTCPSwift
from repro.workloads.job import JobSpec

IDEAL_OVERHEAD = 1500 / 1460


def _jobs():
    template = JobSpec(
        name="Job",
        comm_bits=8e6,
        demand_gbps=1.0,
        compute_time=0.010,
        jitter_sigma=0.0005,
    )
    return [template.with_name("Job1"), template.with_name("Job2")]


def _run_family(name: str):
    jobs = _jobs()
    ideal = jobs[0].ideal_comm_time * IDEAL_OVERHEAD + jobs[0].compute_time
    factories = {
        "mltcp-reno": lambda j: MLTCPReno(mltcp_config_for(j)),
        "mltcp-cubic": lambda j: MLTCPCubic(mltcp_config_for(j)),
        "mltcp-swift": lambda j: MLTCPSwift(mltcp_config_for(j), target_delay=400e-6),
        "mltcp-dctcp": lambda j: MLTCPDctcp(mltcp_config_for(j)),
    }
    kwargs = {}
    if name == "mltcp-dctcp":
        from repro.simulator.queues import EcnQueue

        # DCTCP needs an ECN-marking bottleneck; run_packet_jobs uses
        # DropTail, so assemble manually for this variant.
        return _run_dctcp(jobs, ideal)
    lab = run_packet_jobs(jobs, factories[name], max_iterations=40, seed=2, **kwargs)
    rounds = lab.mean_iteration_by_round()
    report = detect_convergence(rounds, target=ideal, tolerance=0.08)
    return {
        "cc": name,
        "first3_ms": 1000 * float(rounds[:3].mean()),
        "final5_ms": 1000 * float(rounds[-5:].mean()),
        "ideal_ms": 1000 * ideal,
        "converged_at": report.converged_at,
    }


def _run_dctcp(jobs, ideal):
    from repro.simulator.app import TrainingApp
    from repro.simulator.engine import Simulator
    from repro.simulator.queues import EcnQueue
    from repro.simulator.topology import build_dumbbell
    from repro.tcp.base import TcpReceiver, TcpSender

    sim = Simulator()
    net = build_dumbbell(
        sim,
        2,
        bottleneck_bps=1e9,
        bottleneck_queue=EcnQueue(capacity_packets=128, mark_threshold=24),
    )
    rng = np.random.default_rng(2)
    apps = []
    for i, job in enumerate(jobs):
        cc = MLTCPDctcp(mltcp_config_for(job))
        sender = TcpSender(sim, net.hosts[f"s{i}"], job.name, f"r{i}", cc)
        TcpReceiver(sim, net.hosts[f"r{i}"], job.name, f"s{i}")
        app = TrainingApp(sim, sender, job, max_iterations=40, rng=rng)
        app.start()
        apps.append(app)
    sim.run(until=2.5)
    per_job = [a.iteration_times() for a in apps]
    n = min(len(t) for t in per_job)
    rounds = np.array([np.mean([t[i] for t in per_job]) for i in range(n)])
    report = detect_convergence(rounds, target=ideal, tolerance=0.08)
    return {
        "cc": "mltcp-dctcp",
        "first3_ms": 1000 * float(rounds[:3].mean()),
        "final5_ms": 1000 * float(rounds[-5:].mean()),
        "ideal_ms": 1000 * ideal,
        "converged_at": report.converged_at,
    }


def _sweep():
    return [
        _run_family(n)
        for n in ("mltcp-reno", "mltcp-cubic", "mltcp-swift", "mltcp-dctcp")
    ]


def _report(rows) -> str:
    return render_table(
        ["congestion control", "first 3 iters (ms)", "final 5 iters (ms)", "ideal (ms)", "converged at"],
        [
            [r["cc"], r["first3_ms"], r["final5_ms"], r["ideal_ms"], str(r["converged_at"])]
            for r in rows
        ],
        title="Ablation — MLTCP across CC families, two-job packet-level scenario",
    ) + (
        "\n\nAll four variants — loss-based (Reno, CUBIC), delay-based "
        "(Swift) and ECN-based (DCTCP) — slide the jobs into an "
        "interleaved state."
    )


def test_ablation_cc_family(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit("ablation_cc_family", _report(rows))

    for row in rows:
        assert row["final5_ms"] < 1.12 * row["ideal_ms"], row
        assert row["first3_ms"] > 1.2 * row["ideal_ms"], row

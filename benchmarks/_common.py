"""Shared helpers for the benchmark suite.

Each bench regenerates one paper figure and must surface the rows/series it
produced.  pytest captures stdout, so :func:`emit` both prints (visible with
``pytest -s`` or on failure) and writes the rendered report to
``bench_reports/<name>.txt`` next to the repository root, where it is always
inspectable after a run.  :func:`emit_csv` additionally saves the raw series
as CSV for external plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

REPORT_DIR = Path(__file__).resolve().parent.parent / "bench_reports"


def emit(name: str, text: str) -> None:
    """Print a figure report and persist it under bench_reports/."""
    print(f"\n{text}\n")
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_csv(name: str, columns: Mapping[str, Sequence]) -> None:
    """Save aligned data columns as ``bench_reports/<name>.csv``.

    Shorter columns are padded with empty cells so series of different
    lengths (e.g. per-policy iteration counts) can share one file.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    keys = list(columns)
    length = max(len(v) for v in columns.values())
    with open(REPORT_DIR / f"{name}.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(keys)
        for i in range(length):
            writer.writerow(
                [columns[k][i] if i < len(columns[k]) else "" for k in keys]
            )

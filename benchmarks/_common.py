"""Shared helpers for the benchmark suite.

Each bench regenerates one paper figure and must surface the rows/series it
produced.  pytest captures stdout, so :func:`emit` both prints (visible with
``pytest -s`` or on failure) and writes the rendered report to
``bench_reports/<name>.txt`` next to the repository root, where it is always
inspectable after a run.  :func:`emit_csv` additionally saves the raw series
as CSV for external plotting.

Benches whose experiment decomposes into independent points execute them
through :func:`runner_from_env` — an
:class:`repro.harness.runner.ExperimentRunner` configured from environment
variables (docs/HARNESS.md):

* ``REPRO_WORKERS=N``  — run points on an N-process pool (default:
  sequential, so results are reproducible without any setup);
* ``REPRO_CACHE_DIR``  — cache directory (default: ``.repro_cache/`` at the
  repository root);
* ``REPRO_NO_CACHE=1`` — disable the result cache entirely.

:func:`emit_run_report` then writes the runner's instrumentation as
``bench_reports/<name>.run.json`` (schema: docs/run_report.schema.json).
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Mapping, Sequence

from repro.harness.cache import ResultCache
from repro.harness.runner import ExperimentRunner
from repro.harness.telemetry import RunTelemetry

REPORT_DIR = Path(__file__).resolve().parent.parent / "bench_reports"

#: Repository-local default so `make clean` / `git clean` semantics stay
#: obvious; overridden by REPRO_CACHE_DIR (e.g. `make bench-smoke` uses a
#: temp dir).
DEFAULT_CACHE_DIR = REPORT_DIR.parent / ".repro_cache"


def runner_from_env(name: str, **kwargs) -> ExperimentRunner:
    """Build the bench's point runner from REPRO_* environment variables.

    Extra keyword arguments pass straight to
    :class:`~repro.harness.runner.ExperimentRunner` — e.g.
    ``isolate_failures=True, retries=1`` for benches that exercise the
    resilience features (docs/FAULTS.md).
    """
    workers_env = os.environ.get("REPRO_WORKERS", "").strip()
    workers = int(workers_env) if workers_env else None
    if workers is not None and workers < 2:
        workers = None
    if os.environ.get("REPRO_NO_CACHE"):
        cache = None
    else:
        cache = ResultCache(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR)
    return ExperimentRunner(
        name=name, workers=workers, cache=cache, telemetry=RunTelemetry(name),
        **kwargs,
    )


def emit_run_report(name: str, runner: ExperimentRunner) -> Path:
    """Write the runner's JSON run-report to ``bench_reports/<name>.run.json``."""
    REPORT_DIR.mkdir(exist_ok=True)
    path = runner.telemetry.write(REPORT_DIR / f"{name}.run.json")
    print(runner.telemetry.summary_line())
    return path


def emit(name: str, text: str) -> None:
    """Print a figure report and persist it under bench_reports/."""
    print(f"\n{text}\n")
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_csv(name: str, columns: Mapping[str, Sequence]) -> None:
    """Save aligned data columns as ``bench_reports/<name>.csv``.

    Shorter columns are padded with empty cells so series of different
    lengths (e.g. per-policy iteration counts) can share one file.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    keys = list(columns)
    length = max(len(v) for v in columns.values())
    with open(REPORT_DIR / f"{name}.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(keys)
        for i in range(length):
            writer.writerow(
                [columns[k][i] if i < len(columns[k]) else "" for k in keys]
            )

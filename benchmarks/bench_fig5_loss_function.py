"""Figure 5(c): the MLTCP loss function for two jobs with alpha = 1/2.

Regenerates Loss(delta) = -integral of Shift (Eq. 4) over one period and
verifies its shape: maxima at full overlap (delta = 0 and delta = T),
unique minimum at the interleaved point delta = T/2.
"""

import numpy as np

from _common import emit, emit_csv
from repro.harness.experiments import fig5_loss_function
from repro.harness.report import render_table, sparkline


def _report(curves) -> str:
    deltas, losses, shifts = curves["delta"], curves["loss"], curves["shift"]
    period = deltas[-1]
    idx_min = int(np.argmin(losses))
    samples = [0.0, 0.25, 0.5, 0.75, 1.0]
    rows = [
        [
            f"{f * period:.2f}",
            float(losses[int(f * (len(deltas) - 1))]),
            float(shifts[int(f * (len(deltas) - 1))]),
        ]
        for f in samples
    ]
    lines = [
        "Figure 5(c) — MLTCP loss function, alpha = 1/2, T = 1.8 s",
        "",
        f"Loss(delta):  {sparkline(losses, width=72)}",
        f"Shift(delta): {sparkline(shifts, width=72)}",
        "",
        render_table(["delta (s)", "Loss", "Shift"], rows),
        "",
        f"minimum at delta = {deltas[idx_min]:.3f} s "
        f"(paper: T/2 = {period / 2:.3f} s)",
    ]
    return "\n".join(lines)


def test_fig5_loss_function(benchmark):
    curves = benchmark.pedantic(fig5_loss_function, rounds=3, iterations=1)
    emit("fig5_loss_function", _report(curves))
    emit_csv(
        "fig5_loss_function",
        {
            "delta_s": [float(v) for v in curves["delta"]],
            "loss": [float(v) for v in curves["loss"]],
            "shift_s": [float(v) for v in curves["shift"]],
        },
    )

    deltas, losses = curves["delta"], curves["loss"]
    period = deltas[-1]
    assert deltas[np.argmin(losses)] == np.clip(
        deltas[np.argmin(losses)], 0.48 * period, 0.52 * period
    )
    # Maxima at the overlap points.
    assert losses[0] == max(losses[0], losses[len(losses) // 2])
    assert abs(losses[0] - losses[-1]) < 1e-6

"""Cross-rack fabric smoke: MLTCP vs fair share per oversubscribed uplink.

Not a paper figure — the paper's testbed is a single-bottleneck dumbbell —
but the §4 compatibility argument is per link, and this bench exercises it
where placement and ECMP decide the competitor sets: the default 4-rack,
2-spine, 2:1-oversubscribed fat tree of ``cross_rack_interleaving``
(docs/TOPOLOGIES.md), swept over placement policies on the fluid
substrate.  The run-report carries per-link utilization telemetry
(``link_utilization`` section of docs/run_report.schema.json).
"""

from _common import emit, emit_run_report, runner_from_env
from repro.harness.experiments import cross_rack_interleaving
from repro.harness.report import render_table
from repro.harness.telemetry import validate_run_report

POLICIES = ("spread", "packed")


def _run_one(placement: str):
    result = cross_rack_interleaving(substrate="fluid", placement=placement)
    contended = [e for e in result.contention if e.competitors]
    return {
        "placement": placement,
        "cross_rack_flows": result.cross_rack_flows,
        "contended_links": len(contended),
        "interleavable": all(e.interleavable for e in contended),
        "ideal_ms": 1e3 * result.ideal_iteration_time,
        "mltcp_ms": 1e3 * result.final_mean("mltcp"),
        "fair_ms": 1e3 * result.final_mean("fair"),
        "speedup": result.speedup,
        "uplink_gbps": result.spec.uplink_gbps,
        "link_utilization": result.link_utilization,
        "fabric_links": result.spec.fabric_links(),
    }


def _sweep(runner):
    return runner.run_points(_run_one, [{"placement": p} for p in POLICIES])


def _report(rows) -> str:
    return render_table(
        ["placement", "x-rack flows", "contended uplinks", "ideal (ms)",
         "mltcp (ms)", "fair (ms)", "speedup"],
        [
            [r["placement"], str(r["cross_rack_flows"]), str(r["contended_links"]),
             r["ideal_ms"], r["mltcp_ms"], r["fair_ms"], r["speedup"]]
            for r in rows
        ],
        title="Cross-rack fabric — 4 racks x 4 hosts, 2 spines, 2:1 "
        "oversubscribed (1 Gbps/uplink), fluid substrate",
    ) + (
        "\n\nSpread placement puts 2 flows on every used uplink at a "
        "combined mean load that fits (interleavable), so MLTCP converges "
        "to the ideal while fair share stays congested; the packed control "
        "never leaves a rack and both policies run at the ideal."
    )


def test_cross_rack_fabric(benchmark):
    runner = runner_from_env("cross_rack")
    rows = benchmark.pedantic(lambda: _sweep(runner), rounds=1, iterations=1)
    by_policy = {r["placement"]: r for r in rows}

    spread = by_policy["spread"]
    for policy in ("mltcp", "fair"):
        runtime = "mltcp" if policy == "mltcp" else "fair"
        for link in spread["fabric_links"]:
            runner.telemetry.record_link_utilization(
                link,
                spread["link_utilization"][runtime][link],
                capacity_gbps=spread["uplink_gbps"],
                policy=policy,
                substrate="fluid",
                params={"placement": "spread"},
            )
    emit("cross_rack", _report(rows))
    emit_run_report("cross_rack", runner)
    assert validate_run_report(runner.telemetry.as_report()) == []

    # Spread: every flow crosses racks, every contended uplink is in the
    # interleavable-but-contended regime, and MLTCP converges to the ideal
    # while fair share pays the synchronized contention.
    assert spread["cross_rack_flows"] == 8
    assert spread["contended_links"] == 8 and spread["interleavable"]
    assert spread["mltcp_ms"] < 1.1 * spread["ideal_ms"]
    assert spread["speedup"] > 1.15

    # Packed control: no cross-rack flows, nothing to win.
    packed = by_policy["packed"]
    assert packed["cross_rack_flows"] == 0
    assert packed["speedup"] < 1.05

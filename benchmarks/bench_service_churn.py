"""Service-daemon cost: admission throughput and crash-recovery latency.

Not a paper figure — a pytest-benchmark suite keeping the long-lived
service layer (docs/SERVICE.md) inside the bench-compare perf gate.
Three layers, cheapest first: the admission controller under a pure
offer/drain storm (no simulation), one journaled churn run end to end,
and a supervised crash + journal restore mid-run (the recovery-latency
path `make serve-smoke` exercises).
"""

from repro.service import AdmissionController, ChurnDaemon, ServiceConfig, ServiceJournal
from repro.workloads import ArrivalModel, FlashCrowd
from repro.workloads.presets import gpt2_fast_job


def _config(**overrides):
    params = dict(
        arrival=ArrivalModel(
            rate_per_s=1.5,
            horizon_s=10.0,
            flash_crowds=(FlashCrowd(time=3.0, size=4),),
        ),
        templates=(gpt2_fast_job("tpl"),),
        epochs=10,
        seed=3,
        max_running=6,
        queue_limit=8,
    )
    params.update(overrides)
    return ServiceConfig(**params)


def test_admission_throughput_benchmark(benchmark):
    """50k offer/drain decisions through one bounded controller — the
    pure admission-control cost with no engine behind it."""
    specs = [
        gpt2_fast_job(f"j{i}").with_iteration_limit(3) for i in range(64)
    ]

    def storm():
        ctrl = AdmissionController(8, 16, "defer")
        decisions = 0
        running = 0
        for round_index in range(500):
            for spec in specs:
                verdict = ctrl.offer(spec, running)
                decisions += 1
                if verdict in ("admit", "degrade"):
                    running += 1
            running = max(0, running - 24)
            ctrl.drain(running)
            if round_index % 3 == 0:
                ctrl.pending.clear()
        return decisions

    assert benchmark(storm) == 500 * 64


def test_service_churn_run_benchmark(benchmark, tmp_path):
    """One journaled 10-epoch churn run end to end: arrivals, admission,
    the live engine, departures, and a WAL commit every epoch."""
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        journal = ServiceJournal(
            tmp_path / f"bench-{counter['n']}.journal"
        )
        daemon = ChurnDaemon(_config(), journal=journal)
        result = daemon.run()
        assert result["epochs_run"] == 10
        return result["counters"]["admitted"]

    assert benchmark(run) > 0


def test_service_crash_recovery_benchmark(benchmark, tmp_path):
    """The recovery-latency path: a run with one injected mid-epoch
    crash, so the cost includes the journal restore and the replay."""
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        journal = ServiceJournal(
            tmp_path / f"crash-{counter['n']}.journal"
        )
        daemon = ChurnDaemon(
            _config(), journal=journal, crash_at_epoch=5
        )
        result = daemon.run()
        assert result["counters"]["recoveries"] == 1
        return result["epochs_run"]

    assert benchmark(run) == 10

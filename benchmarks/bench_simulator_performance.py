"""Engine performance: events/second of the two simulation substrates.

Not a paper figure — a conventional pytest-benchmark microbenchmark suite
so regressions in the discrete-event core or the fluid allocator are
caught.  Runs with multiple rounds (unlike the one-shot figure benches).
"""

from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.simulator.engine import Simulator
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.reno import RenoCC
from repro.workloads.presets import four_job_scenario


def test_event_engine_throughput(benchmark):
    """Raw event scheduling/dispatch rate of the discrete-event core."""

    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(1e-6, tick)

        sim.schedule(1e-6, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


def test_packet_transfer_benchmark(benchmark):
    """End-to-end packet simulation cost of a 1 MB TCP transfer."""

    def transfer():
        sim = Simulator()
        net = build_dumbbell(sim, 1, bottleneck_bps=1e9)
        sender = TcpSender(sim, net.hosts["s0"], "f", "r0", RenoCC())
        TcpReceiver(sim, net.hosts["r0"], "f", "s0")
        sender.send_bytes(1_000_000)
        sim.run(until=0.5)
        return sender.all_acked()

    assert benchmark(transfer)


def test_fluid_four_jobs_benchmark(benchmark):
    """Fluid-simulator cost of 20 MLTCP iterations of the four-job mix."""

    def run():
        result = run_fluid(
            four_job_scenario(),
            50.0,
            policy=MLTCPWeighted(),
            max_iterations=20,
            seed=5,
            record_segments=False,
        )
        return len(result.iterations)

    assert benchmark(run) >= 80


def test_fat_tree_transfer_benchmark(benchmark):
    """Packet cost of two cross-rack TCP transfers over a fat-tree fabric.

    Exercises the fabric-specific hot path the dumbbell benches never
    touch: multi-hop ECMP routes through rack and spine switches
    (docs/TOPOLOGIES.md).  Two flows, ECMP-split over the two spines.
    """
    from repro.simulator.topology import build_fat_tree
    from repro.workloads.placement import FabricSpec

    spec = FabricSpec(n_racks=2, hosts_per_rack=2, n_spines=2, ecmp_seed=2)

    def transfer():
        sim = Simulator()
        net = build_fat_tree(sim, spec)
        senders = []
        for i in range(2):
            src, dst = f"h0_{i}", f"h1_{i}"
            sender = TcpSender(sim, net.hosts[src], f"f{i}", dst, RenoCC())
            TcpReceiver(sim, net.hosts[dst], f"f{i}", src)
            sender.send_bytes(250_000)
            senders.append(sender)
        sim.run(until=0.2)
        return all(s.all_acked() for s in senders)

    assert benchmark(transfer)

"""Large-scale fluid benchmarks: the 10k-flow regime, not the toy one.

ROADMAP open item 2: the PR 4 fast-path work optimized constant factors;
these benches gate the *structural* scale work (vectorized water-fill,
array-backed flow state) in the regime where MLTCP's distributed-
scheduling claim is actually interesting — CASSINI-style clusters with
hundreds of jobs across dozens of racks, and a 10k-concurrent-flow
single bottleneck.

Two suites, both part of the ``bench-compare`` perf gate
(docs/PERFORMANCE.md, "Vectorized core & scale benchmarks"):

* ``test_scale_network_fluid_1000x64`` — 1000 jobs spread over a
  64-rack 2:1-oversubscribed fat tree, MLTCP weights, per-link
  progressive filling across ~130 contended links.
* ``test_scale_single_link_10k_flows`` — 10 000 concurrent MLTCP flows
  on one bottleneck: the pure allocation/weight-update hot loop with
  no fabric bookkeeping.

Scenario builders are module-level so the acceptance test in
``tests/test_perf_contracts.py`` can pin their outputs bit-for-bit.
"""

from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.fabric import FluidFabric
from repro.fluid.flowsim import run_fluid
from repro.fluid.network import run_network_fluid
from repro.workloads.job import JobSpec
from repro.workloads.placement import FabricSpec, place_jobs

#: 1000 jobs x 64 racks: ~32 hosts per rack, 2 spines, 2:1 oversubscription.
SCALE_JOBS = 1000
SCALE_RACKS = 64
SCALE_SPEC = FabricSpec(
    n_racks=SCALE_RACKS,
    hosts_per_rack=max(2, (2 * SCALE_JOBS) // SCALE_RACKS + 1),
    n_spines=2,
    oversubscription=2.0,
)

#: 10k flows on one 400 Gbps bottleneck; staggered starts so the active
#: set churns instead of moving in lockstep.
STRESS_FLOWS = 10_000
STRESS_CAPACITY_GBPS = 400.0


def scale_fabric_jobs() -> list[JobSpec]:
    """The 1000-job mix: uniform 25 MB transfers, four start cohorts.

    Four staggered cohorts desynchronize comm completions so the run
    exercises per-event re-allocation instead of lockstep rounds, while
    keeping the scalar reference path benchmarkable (each extra cohort
    multiplies the distinct allocation events).
    """
    return [
        JobSpec(
            name=f"J{i:04d}",
            comm_bits=2e8,
            demand_gbps=10.0,
            compute_time=0.05,
            start_offset=0.002 * (i % 4),
        )
        for i in range(SCALE_JOBS)
    ]


def run_scale_network_fluid(max_iterations: int = 2):
    """One MLTCP network-fluid pass over the 64-rack fabric."""
    fabric = FluidFabric.from_spec(SCALE_SPEC)
    placements = place_jobs(scale_fabric_jobs(), SCALE_SPEC, policy="spread")
    return run_network_fluid(
        fabric.place(placements),
        fabric.capacities_gbps,
        mltcp=True,
        max_iterations=max_iterations,
        seed=0,
        quantum=0.05,
    )


def stress_jobs() -> list[JobSpec]:
    """10k small flows (6.25 MB) with 40 staggered start cohorts."""
    return [
        JobSpec(
            name=f"J{i:05d}",
            comm_bits=5e7,
            demand_gbps=10.0,
            compute_time=0.05,
            start_offset=0.001 * (i % 40),
        )
        for i in range(STRESS_FLOWS)
    ]


def run_stress_single_link(max_iterations: int = 1):
    """One MLTCP fluid pass of 10k flows sharing a single bottleneck."""
    return run_fluid(
        stress_jobs(),
        STRESS_CAPACITY_GBPS,
        policy=MLTCPWeighted(),
        max_iterations=max_iterations,
        seed=3,
        quantum=0.05,
        record_segments=False,
    )


def test_scale_network_fluid_1000x64(benchmark):
    """1000 jobs x 64 racks, 2 MLTCP iterations each, per-link filling."""

    def run():
        return len(run_scale_network_fluid().iterations)

    assert benchmark(run) == 2 * SCALE_JOBS


def test_scale_single_link_10k_flows(benchmark):
    """10k concurrent MLTCP flows on one 400 Gbps bottleneck."""

    def run():
        return len(run_stress_single_link().iterations)

    assert benchmark(run) == STRESS_FLOWS

"""Chaos campaign cost: what a seeded fabric-fault campaign adds on top.

Not a paper figure — a pytest-benchmark suite keeping the chaos machinery
(docs/FAULTS.md "Fabric faults & chaos campaigns") inside the
bench-compare perf gate.  Three layers, cheapest first: campaign
*generation* (pure sampling, no simulation), the failure-aware routing
state under a burst of apply/revert transitions, and one end-to-end
fluid `chaos_recovery` campaign with recovery SLOs scored.
"""

from repro.faults import ChaosBudget, FabricRoutingState, FaultEvent, generate_campaign
from repro.harness import chaos_recovery
from repro.workloads.placement import FabricSpec


def test_chaos_campaign_generation_benchmark(benchmark):
    """Sampling 50 validated schedules from one budget (covers the
    blast-radius check against every rack pair per candidate)."""
    spec = FabricSpec(
        n_racks=4, hosts_per_rack=4, n_spines=2, oversubscription=2.0,
        ecmp_seed=2,
    )
    budget = ChaosBudget(
        horizon=0.5, mtbf=0.05, mean_duration=0.05, max_concurrent=2
    )

    def sample_50():
        total = 0
        for seed in range(50):
            total += len(generate_campaign(spec, budget, seed=seed))
        return total

    assert benchmark(sample_50) >= 50


def test_fabric_reroute_churn_benchmark(benchmark):
    """2k apply/revert transitions with a full path recomputation for
    every host pair after each — the routing-side cost of a reroute."""
    spec = FabricSpec(
        n_racks=4, hosts_per_rack=2, n_spines=4, oversubscription=2.0,
        ecmp_seed=2,
    )
    hosts = spec.host_names()
    events = [
        FaultEvent("spine_down", time=0.1 * i, duration=0.05,
                   spine=f"spine{i % spec.n_spines}")
        for i in range(4)
    ]

    def churn():
        state = FabricRoutingState(spec)
        routed = 0
        for _round in range(250):
            for event in events:
                state.apply(event)
                for src in hosts[:4]:
                    for dst in hosts[-4:]:
                        if state.path_nodes(src, dst) is not None:
                            routed += 1
                state.revert(event)
        assert state.healthy()
        return routed

    assert benchmark(churn) > 0


def test_fluid_chaos_recovery_benchmark(benchmark):
    """One seeded campaign end to end on the fluid substrate: MLTCP and
    fair-share runs plus their shared control, SLO scoring included."""

    def run():
        results = chaos_recovery(
            substrate="fluid", campaigns=1, iterations=32, guard_policy=None
        )
        assert len(results) == 1
        assert results[0].slos["mltcp"]
        return len(results[0].slos["mltcp"])

    assert benchmark(run) >= 1

"""Extension bench (§5): per-class congestion control for mixed traffic.

The paper's FAST-socket-plugin hook lets operators pick a different
aggressiveness function per traffic class; "for latency-sensitive traffic,
in order to acquire most of the bandwidth, we recommend using a bandwidth
aggressiveness function with larger values".  This bench shares a bottleneck
between an ML training job (MLTCP, paper function) and an RPC request stream
and compares the RPC flow-completion times when the RPC class runs legacy
Reno vs the recommended large-constant function.
"""

import numpy as np

from _common import emit
from repro.harness.report import render_table
from repro.simulator.app import RequestApp, TrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver, TcpSender
from repro.tcp.classes import default_registry
from repro.workloads.job import JobSpec


def _mixed_run(latency_class: str, seed: int = 3) -> np.ndarray:
    registry = default_registry()
    sim = Simulator()
    net = build_dumbbell(
        sim, 2, bottleneck_bps=1e9, bottleneck_queue=DropTailQueue(64)
    )
    job = JobSpec(
        "ML", comm_bits=8e6, demand_gbps=1.0, compute_time=0.004,
        jitter_sigma=0.0003,
    )
    ml_sender = TcpSender(sim, net.hosts["s0"], "ML", "r0", registry.create("ml", job))
    TcpReceiver(sim, net.hosts["r0"], "ML", "s0")
    TrainingApp(sim, ml_sender, job, rng=np.random.default_rng(seed)).start()

    rpc_sender = TcpSender(
        sim, net.hosts["s1"], "rpc", "r1", registry.create(latency_class)
    )
    TcpReceiver(sim, net.hosts["r1"], "rpc", "s1")
    rpc = RequestApp(
        sim, rpc_sender, request_bytes=200_000, interval=0.004,
        max_requests=120, rng=np.random.default_rng(seed),
    )
    rpc.start()
    sim.run(until=4.0)
    return rpc.fct()


def _experiment():
    return {
        "legacy": _mixed_run("legacy"),
        "latency": _mixed_run("latency"),
    }


def _report(fcts) -> str:
    rows = []
    for label, fct in fcts.items():
        rows.append(
            [
                label,
                len(fct),
                1000 * float(np.percentile(fct, 50)),
                1000 * float(np.percentile(fct, 90)),
                1000 * float(np.percentile(fct, 99)),
            ]
        )
    speedup = np.percentile(fcts["legacy"], 90) / np.percentile(fcts["latency"], 90)
    return render_table(
        ["RPC class", "requests", "FCT p50 (ms)", "FCT p90 (ms)", "FCT p99 (ms)"],
        rows,
        title="§5 extension — RPC stream sharing the bottleneck with an ML "
        "job, per-class congestion control",
    ) + (
        f"\n\nSwitching the RPC class from legacy Reno to the recommended "
        f"large-value function cuts its p90 FCT by {speedup:.2f}x."
    )


def test_extension_traffic_classes(benchmark):
    fcts = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    emit("extension_traffic_classes", _report(fcts))

    assert np.percentile(fcts["latency"], 90) < 0.9 * np.percentile(
        fcts["legacy"], 90
    )
    # The ML job is slowed but not starved: requests still complete.
    assert len(fcts["latency"]) >= 100

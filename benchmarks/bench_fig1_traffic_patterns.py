"""Figure 1: the traffic patterns of jobs J1 (GPT-3) and J2–J4 (GPT-2).

Regenerates each job's offered-load trace over the first five seconds and
reports peak demand, communication duty cycle and per-iteration volume —
the quantities the paper's Figure 1 panels convey visually.
"""

from _common import emit
from repro.harness.experiments import fig1_traffic_patterns
from repro.harness.report import render_table, sparkline
from repro.workloads.presets import four_job_scenario


def _report() -> str:
    traces = fig1_traffic_patterns(duration=5.0, dt=0.01)
    jobs = {j.name: j for j in four_job_scenario(jitter_sigma=0.0)}
    lines = ["Figure 1 — per-job network demand in isolation (Gbps over 5 s)", ""]
    rows = []
    for name, (times, demand) in traces.items():
        lines.append(f"{name}: {sparkline(demand, width=76)}")
        duty = float((demand > 0).mean())
        volume = float(demand.sum() * (times[1] - times[0]))  # Gbit over 5 s
        per_iter = volume / (5.0 / jobs[name].ideal_iteration_time)
        rows.append(
            [
                name,
                float(demand.max()),
                duty,
                jobs[name].ideal_iteration_time,
                per_iter,
            ]
        )
    lines.append("")
    lines.append(
        render_table(
            [
                "job",
                "peak demand (Gbps)",
                "comm duty cycle",
                "iteration (s)",
                "Gbit/iteration",
            ],
            rows,
        )
    )
    return "\n".join(lines)


def test_fig1_traffic_patterns(benchmark):
    report = benchmark.pedantic(_report, rounds=1, iterations=1)
    emit("fig1_traffic_patterns", report)
    traces = fig1_traffic_patterns(duration=5.0, dt=0.01)
    # Shape checks: J1 is the 1.2 s job, the GPT-2 trio the 1.8 s jobs.
    _t, j1 = traces["J1"]
    _t, j2 = traces["J2"]
    assert j1.max() == 25.0
    # GPT-2's double-hump bursts exceed the nominal 25 Gbps demand.
    assert 25.0 < j2.max() < 40.0

"""§4 approximation-error bound: measured steady-state error vs theory.

The paper models iteration-time perturbations as zero-mean Gaussian noise
with std sigma and proves the steady-state convergence error is normal with
std 2*sigma*(1 + Intercept/Slope).  This bench sweeps sigma, runs the
two-job gradient descent to steady state, and compares the measured error
std against that bound.
"""

from _common import emit
from repro.harness.experiments import noise_error_bound
from repro.harness.report import render_table

SIGMAS = (0.001, 0.002, 0.005, 0.01, 0.02)


def _report(rows) -> str:
    table = render_table(
        ["sigma (s)", "measured error std (s)", "2*sigma*(1+I/S) bound (s)", "within bound?"],
        [
            [
                r["sigma"],
                r["measured_std"],
                r["theory_bound"],
                "yes" if r["measured_std"] <= 1.5 * r["theory_bound"] else "NO",
            ]
            for r in rows
        ],
        title="§4 — steady-state approximation error under iteration-time noise",
    )
    return table + (
        "\n\nThe error grows linearly with the noise intensity, as the paper's "
        "bound predicts (Slope = 1.75, Intercept = 0.25 -> factor 2.29)."
    )


def test_noise_error_bound(benchmark):
    rows = benchmark.pedantic(
        lambda: noise_error_bound(sigmas=SIGMAS, iterations=4000),
        rounds=1,
        iterations=1,
    )
    emit("noise_error_bound", _report(rows))

    for row in rows:
        assert row["measured_std"] <= 1.5 * row["theory_bound"]
    # Linear scaling: 10x the noise gives roughly 10x the error.
    ratio = rows[-1]["measured_std"] / rows[0]["measured_std"]
    assert 5.0 < ratio < 40.0

"""Cross-validation: the fluid simulator vs the §4 closed-form analysis.

Eq. 3 was derived assuming MLTCP divides the link in proportion to the
aggressiveness weights; the fluid simulator implements that sharing
mechanistically (water-filling over F(bytes_ratio) weights) with none of the
closed form baked in.  If both are right, the simulated start-time
difference of two jobs must follow the analytic gradient-descent trajectory
step for step — this bench measures exactly that.
"""

import numpy as np

from _common import emit
from repro.core.analysis import gradient_descent, signed_shift
from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.harness.report import render_table
from repro.workloads.presets import two_job_scenario

ALPHA = 0.5


def _trajectories(delta0: float = 0.1, iterations: int = 20):
    jobs = [j.with_jitter(0.0) for j in two_job_scenario()]
    jobs = [jobs[0], jobs[1].with_offset(delta0)]
    period = jobs[0].ideal_iteration_time
    result = run_fluid(
        jobs, 50.0, policy=MLTCPWeighted(), max_iterations=iterations + 1, seed=None
    )
    s1, s2 = result.comm_starts("Job1"), result.comm_starts("Job2")
    n = min(len(s1), len(s2))
    fluid = (s2[:n] - s1[:n]) % period
    analytic = gradient_descent(delta0, ALPHA, period, n - 1).deltas
    return period, fluid, analytic


def _report(period, fluid, analytic) -> str:
    n = min(len(fluid), len(analytic))
    rows = [
        [i, float(fluid[i]), float(analytic[i]), float(abs(fluid[i] - analytic[i]))]
        for i in range(min(n, 10))
    ]
    worst = float(np.max(np.abs(fluid[:n] - analytic[:n])))
    return render_table(
        ["iteration", "fluid delta (s)", "Eq.3 delta (s)", "abs diff (s)"],
        rows,
        title="Theory vs fluid — start-time difference trajectory "
        "(two alpha=1/2 jobs, delta_0 = 0.1 s)",
    ) + (
        f"\n\nworst-case divergence over {n} iterations: {worst:.4f} s "
        f"({100 * worst / period:.2f}% of the period)"
    )


def test_theory_vs_fluid_trajectory(benchmark):
    period, fluid, analytic = benchmark.pedantic(
        _trajectories, rounds=1, iterations=1
    )
    emit("theory_vs_fluid", _report(period, fluid, analytic))

    n = min(len(fluid), len(analytic))
    worst = float(np.max(np.abs(fluid[:n] - analytic[:n])))
    assert worst < 0.02 * period  # within 2% of the period at every step


def test_shift_formula_pointwise(benchmark):
    """One-iteration shifts measured in the simulator match Eq. 3."""

    def measure():
        period = two_job_scenario()[0].ideal_iteration_time
        rows = []
        for delta0 in (0.1, 0.3, 0.5, 0.7):
            jobs = [j.with_jitter(0.0) for j in two_job_scenario()]
            jobs = [jobs[0], jobs[1].with_offset(delta0)]
            result = run_fluid(
                jobs, 50.0, policy=MLTCPWeighted(), max_iterations=3, seed=None
            )
            s1, s2 = result.comm_starts("Job1"), result.comm_starts("Job2")
            measured = float(((s2[1] - s1[1]) - (s2[0] - s1[0])) % period)
            theory = signed_shift(delta0, ALPHA, period)
            rows.append((delta0, measured, theory))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["delta_0 (s)", "measured shift (s)", "Eq. 3 shift (s)"],
        [list(r) for r in rows],
        title="Theory vs fluid — per-iteration Shift(delta) (Eq. 3)",
    )
    emit("theory_vs_fluid_shift", table)
    for delta0, measured, theory in rows:
        assert measured == np.clip(measured, 0.9 * theory - 0.01, 1.1 * theory + 0.01)

"""Ablation: Slope and Intercept of the linear aggressiveness function.

The paper fixes Slope = 1.75 and Intercept = 0.25, "tuned based on the link
rate and the noise in the system", and the §4 error bound depends on the
ratio Intercept/Slope.  This bench sweeps both constants on the four-job
scenario and reports convergence iteration and final gap to the ideal, plus
the theoretical error factor 2*(1 + I/S) for each setting.
"""

import numpy as np

from _common import emit, emit_run_report, runner_from_env
from repro.core.aggressiveness import LinearAggressiveness
from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.harness.report import render_table
from repro.metrics.convergence import detect_convergence
from repro.workloads.presets import BOTTLENECK_GBPS, four_job_scenario

SETTINGS = [
    (0.5, 0.25),
    (1.0, 0.25),
    (1.75, 0.25),  # the paper's choice
    (3.5, 0.25),
    (1.75, 0.1),
    (1.75, 0.5),
    (1.75, 1.0),
]

TARGET = float(np.mean([1.2, 1.8, 1.8, 1.8]))


def _run_one(slope: float, intercept: float):
    function = LinearAggressiveness(slope=slope, intercept=intercept)
    result = run_fluid(
        four_job_scenario(),
        BOTTLENECK_GBPS,
        policy=MLTCPWeighted(function),
        max_iterations=50,
        seed=5,
    )
    rounds = result.mean_iteration_by_round()
    report = detect_convergence(rounds, target=TARGET, tolerance=0.05)
    return {
        "slope": slope,
        "intercept": intercept,
        "converged_at": report.converged_at,
        "final_gap_pct": 100 * abs(report.final_mean - TARGET) / TARGET,
        "error_factor": 2 * (1 + intercept / slope),
    }


def _sweep(runner):
    return runner.run_points(
        _run_one, [{"slope": s, "intercept": i} for s, i in SETTINGS]
    )


def _report(rows) -> str:
    return render_table(
        [
            "slope",
            "intercept",
            "converged at iter",
            "final gap (%)",
            "error factor 2(1+I/S)",
        ],
        [
            [
                r["slope"],
                r["intercept"],
                str(r["converged_at"]),
                r["final_gap_pct"],
                r["error_factor"],
            ]
            for r in rows
        ],
        title="Ablation — linear aggressiveness constants on the 4-job mix "
        "(paper uses slope 1.75, intercept 0.25)",
    ) + (
        "\n\nSteeper slopes converge in fewer iterations; larger intercepts "
        "raise the §4 noise-error factor without helping convergence."
    )


def test_ablation_slope_intercept(benchmark):
    runner = runner_from_env("ablation_slope_intercept")
    rows = benchmark.pedantic(lambda: _sweep(runner), rounds=1, iterations=1)
    emit("ablation_slope_intercept", _report(rows))
    emit_run_report("ablation_slope_intercept", runner)

    by_key = {(r["slope"], r["intercept"]): r for r in rows}
    paper = by_key[(1.75, 0.25)]
    assert paper["converged_at"] is not None and paper["converged_at"] <= 20
    assert paper["final_gap_pct"] < 5.0
    # Every increasing setting eventually interleaves on this mix.
    for row in rows:
        assert row["converged_at"] is not None
        assert row["final_gap_pct"] < 5.0

"""Extension bench: the gradient-descent view beyond two jobs.

§5: "The dimension of gradient descent space increases with the number of
jobs … the relative shifts for each job, calculated from the gradient of
this function, thus takes into account each resource type."  This bench
runs the analytic multi-job descent (`MultiJobDescent`, the sum-of-pairwise
model) for 2–8 jobs, reports how the total communication overlap decays,
and cross-checks the final offsets against the fluid simulator for the
cases the fluid model can host.
"""

import numpy as np

from _common import emit
from repro.core.analysis import MultiJobDescent
from repro.fluid.allocation import MLTCPWeighted
from repro.fluid.flowsim import run_fluid
from repro.harness.report import render_table

PERIOD = 1.8
ALPHA = 0.25  # matches the gpt2 preset


def _optimal_overlap(n_jobs: int) -> float:
    """Total pairwise overlap of evenly spaced offsets — the loss minimum.

    For ``n * alpha * T <= T`` the jobs fit disjointly (overlap 0); beyond
    that, even spacing at ``T/n`` is optimal and leaves a residual overlap
    that no schedule can remove.
    """
    comm = ALPHA * PERIOD
    spacing = PERIOD / n_jobs
    total = 0.0
    for i in range(n_jobs):
        for j in range(i + 1, n_jobs):
            d = spacing * (j - i)
            d = min(d, PERIOD - d)
            total += max(0.0, comm - d)
    return total


def _descent_row(n_jobs: int, rng_seed: int = 0):
    descent = MultiJobDescent(alpha=ALPHA, period=PERIOD, damping=0.5)
    rng = np.random.default_rng(rng_seed)
    offsets0 = rng.uniform(0, 0.2, size=n_jobs)  # near-synchronized start
    history = descent.run(offsets0, iterations=120, noise_sigma=0.002, rng=rng)
    overlaps = np.array([descent.total_overlap(h) for h in history])
    optimal = _optimal_overlap(n_jobs)
    # First iteration within tolerance of the achievable optimum.
    threshold = optimal + 0.03 * PERIOD
    below = np.nonzero(overlaps <= threshold)[0]
    return {
        "jobs": n_jobs,
        "initial_overlap": float(overlaps[0]),
        "final_overlap": float(overlaps[-10:].mean()),
        "optimal_overlap": optimal,
        "converged_at": int(below[0]) if below.size else None,
    }


def _fluid_check():
    """Fluid cross-check with *full-rate* jobs (any overlap is contention):
    three such jobs must converge to pairwise-disjoint comm phases."""
    from repro.workloads.job import JobSpec, gbit

    template = JobSpec(
        name="F",
        comm_bits=gbit(22.5),  # 0.45 s at 50 Gbps: alpha = 0.25
        demand_gbps=50.0,
        compute_time=1.35,
        jitter_sigma=0.005,
    )
    jobs = [template.with_name(f"F{i}") for i in range(3)]
    result = run_fluid(jobs, 50.0, policy=MLTCPWeighted(), max_iterations=50, seed=3)
    descent = MultiJobDescent(alpha=ALPHA, period=PERIOD)
    # Pairwise circular distances taken from comm starts nearest in time.
    reference = result.comm_starts("F0")[-1]
    offsets = []
    for job in jobs:
        starts = result.comm_starts(job.name)
        nearest = starts[np.argmin(np.abs(starts - reference))]
        offsets.append(float(nearest % PERIOD))
    return descent.total_overlap(offsets)


def _experiment():
    rows = [_descent_row(n) for n in (2, 3, 4, 6, 8)]
    fluid_overlap = _fluid_check()
    return rows, fluid_overlap


def _report(rows, fluid_overlap) -> str:
    return render_table(
        [
            "jobs",
            "initial overlap (s)",
            "final overlap (s)",
            "optimal (even spacing)",
            "at optimum by iter",
        ],
        [
            [
                r["jobs"],
                r["initial_overlap"],
                r["final_overlap"],
                r["optimal_overlap"],
                str(r["converged_at"]),
            ]
            for r in rows
        ],
        title="§5 extension — multi-job gradient descent on the pairwise "
        "interleaving loss (alpha = 0.25, T = 1.8 s)",
    ) + (
        "\n\nBeyond 4 jobs full separation is impossible (n*alpha*T > T); "
        "the descent lands on the even-spacing optimum instead.\n"
        f"Fluid cross-check (3 full-rate jobs): final pairwise overlap "
        f"{fluid_overlap:.4f} s (analytic optimum 0)."
    )


def test_extension_multijob_descent(benchmark):
    rows, fluid_overlap = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    emit("extension_multijob_descent", _report(rows, fluid_overlap))

    for row in rows:
        assert row["converged_at"] is not None, row
        # Lands within a small margin of the achievable optimum.
        assert row["final_overlap"] <= row["optimal_overlap"] + 0.06, row
    assert fluid_overlap < 0.12

"""Extension bench: Figure 2(b)'s head-of-line argument at packet level.

The fluid SRPT policy reproduces pFabric's schedule at flow granularity;
this bench cross-checks it on the packet substrate — pFabric priority
queues (dequeue-least-remaining, drop-most-remaining) plus pFabric's
minimal transport — against MLTCP-Reno on the same periodic four-job mix.
"""

import numpy as np

from _common import emit, emit_run_report, runner_from_env
from repro.harness.packetlab import mltcp_config_for, run_packet_jobs
from repro.harness.report import render_table
from repro.simulator.app import TrainingApp
from repro.simulator.engine import Simulator
from repro.simulator.queues import PriorityQueue
from repro.simulator.topology import build_dumbbell
from repro.tcp.base import TcpReceiver
from repro.tcp.mltcp import MLTCPReno
from repro.tcp.pfabric import PFabricSender
from repro.workloads.job import JobSpec

OVERHEAD = 1500 / 1460


def _jobs():
    big = JobSpec("J1", comm_bits=8e6, demand_gbps=1.0, compute_time=0.010,
                  jitter_sigma=0.0003)
    small = JobSpec("Jx", comm_bits=4e6, demand_gbps=1.0, compute_time=0.020,
                    jitter_sigma=0.0003)
    return [big] + [small.with_name(f"J{i}") for i in (2, 3, 4)]


def _run_pfabric(iterations=12):
    sim = Simulator()
    jobs = _jobs()
    net = build_dumbbell(sim, 4, bottleneck_bps=1e9, bottleneck_queue=PriorityQueue(64))
    rng = np.random.default_rng(4)
    apps = {}
    for i, job in enumerate(jobs):
        sender = PFabricSender(sim, net.hosts[f"s{i}"], job.name, f"r{i}")
        TcpReceiver(sim, net.hosts[f"r{i}"], job.name, f"s{i}")
        app = TrainingApp(sim, sender, job, max_iterations=iterations, rng=rng)
        app.start()
        apps[job.name] = app
    sim.run(until=2.5)
    return jobs, {name: app.iteration_times() for name, app in apps.items()}


def _run_mltcp(iterations=40):
    jobs = _jobs()
    lab = run_packet_jobs(
        jobs,
        lambda j: MLTCPReno(mltcp_config_for(j)),
        max_iterations=iterations,
        seed=4,
    )
    return jobs, {j.name: lab.iteration_times(j.name) for j in jobs}


def _run_system(system: str):
    """One runner point: the per-job iteration-time arrays of one transport.

    Top-level (picklable) so the two packet simulations can run on separate
    pool workers under ``REPRO_WORKERS`` and be cached independently.
    """
    if system == "pfabric":
        _jobs_unused, times = _run_pfabric()
    elif system == "mltcp":
        _jobs_unused, times = _run_mltcp()
    else:
        raise ValueError(f"unknown system {system!r}")
    return times


def _experiment(runner):
    pfabric, mltcp = runner.run_points(
        _run_system, [{"system": "pfabric"}, {"system": "mltcp"}]
    )
    jobs = _jobs()
    ideals = {
        j.name: j.ideal_comm_time * OVERHEAD + j.compute_time for j in jobs
    }
    rows = []
    for name in ideals:
        rows.append(
            {
                "job": name,
                "ideal_ms": 1000 * ideals[name],
                "pfabric_ms": 1000 * float(pfabric[name][:8].mean()),
                "mltcp_ms": 1000 * float(mltcp[name][-8:].mean()),
            }
        )
    return rows


def _report(rows) -> str:
    return render_table(
        ["job", "ideal (ms)", "pFabric early (ms)", "MLTCP converged (ms)"],
        [[r["job"], r["ideal_ms"], r["pfabric_ms"], r["mltcp_ms"]] for r in rows],
        title="Extension — Figure 2(b) at packet level: pFabric priority "
        "fabric vs MLTCP-Reno, periodic four-job mix",
    ) + (
        "\n\npFabric head-of-line blocks J1 (the largest collective) while "
        "MLTCP converges every job to its ideal."
    )


def test_extension_pfabric_packet(benchmark):
    runner = runner_from_env("extension_pfabric_packet")
    rows = benchmark.pedantic(
        lambda: _experiment(runner), rounds=1, iterations=1
    )
    emit("extension_pfabric_packet", _report(rows))
    emit_run_report("extension_pfabric_packet", runner)

    by_job = {r["job"]: r for r in rows}
    # pFabric penalizes the big job well beyond its ideal ...
    assert by_job["J1"]["pfabric_ms"] > 1.25 * by_job["J1"]["ideal_ms"]
    # ... while MLTCP treats it strictly better.  (At full-rate demand the
    # 18.2 ms / 24.1 ms periods admit no zero-contention tiling, so J1's
    # converged point sits above its isolation ideal for *any* scheduler.)
    assert by_job["J1"]["mltcp_ms"] < 0.9 * by_job["J1"]["pfabric_ms"]
    for name in ("J2", "J3", "J4"):
        assert by_job[name]["mltcp_ms"] < 1.06 * by_job[name]["ideal_ms"]
